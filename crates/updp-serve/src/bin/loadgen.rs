//! `loadgen` — drives N concurrent connections against `updp-serve`
//! and writes the `BENCH_serve.json` throughput/latency report.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--requests N] [--connections a,b,…]
//!         [--records N] [--out PATH] [--check]
//! ```
//!
//! Without `--addr`, an in-process server is started on an ephemeral
//! port (self-contained measurement). Each connection count `c` gets
//! a fresh run: `c` threads, each with its own keep-alive connection
//! and its own registered dataset (a huge ε budget, so the run is
//! never starved), each issuing `--requests` hardened batch queries
//! (mean + quantile(0.9) + iqr). Latency is per request, merged
//! across connections; p50/p99 are nearest-rank.
//!
//! `--check` is the CI smoke mode (mirroring `bench_baseline
//! --check`): tiny run, then an assertion that the report
//! round-trips through the shared JSON codec. Nothing is written.

use std::time::Instant;
use updp_serve::client::{query_body, Connection};
use updp_serve::report::{percentile_ms, LoadRun, ServeReport, SCHEMA};
use updp_serve::{Ledger, Server};

fn die(message: &str) -> ! {
    eprintln!("loadgen: {message}");
    std::process::exit(2);
}

fn gaussian(n: usize, seed: u64) -> Vec<f64> {
    use updp_dist::ContinuousDistribution;
    let mut rng = updp_core::rng::seeded(seed);
    updp_dist::Gaussian::new(100.0, 5.0)
        .expect("valid parameters")
        .sample_vec(&mut rng, n)
}

/// One load level: `connections` worker threads, each issuing
/// `requests` queries on its own dataset. Returns the merged run row.
fn run_level(addr: &str, connections: usize, requests: usize, records: usize) -> LoadRun {
    // Register the per-connection datasets first (setup, not timed).
    // 409 means a previous loadgen run against this server already
    // registered the name — re-attach instead of dying, so repeat
    // measurements against a long-running server work.
    for worker in 0..connections {
        let mut setup = Connection::open(addr).unwrap_or_else(|e| die(&e.to_string()));
        let name = format!("load-c{connections}-w{worker}");
        match setup.register(&name, 1e12, &gaussian(records, worker as u64)) {
            Ok(_) => {}
            Err(updp_serve::client::ClientError::Status { status: 409, .. }) => {}
            Err(e) => die(&format!("register {name}: {e}")),
        }
    }
    let started = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|worker| {
                scope.spawn(move || {
                    let name = format!("load-c{connections}-w{worker}");
                    let mut connection =
                        Connection::open(addr).unwrap_or_else(|e| die(&e.to_string()));
                    let mut latencies = Vec::with_capacity(requests);
                    for i in 0..requests {
                        let body = query_body(
                            &name,
                            i as u64,
                            false,
                            &[
                                ("mean", 1e-3, None),
                                ("quantile", 1e-3, Some(0.9)),
                                ("iqr", 1e-3, None),
                            ],
                        );
                        let sent = Instant::now();
                        connection
                            .query(&body)
                            .unwrap_or_else(|e| die(&format!("query {name}: {e}")));
                        latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    latencies.sort_by(f64::total_cmp);
    LoadRun {
        connections,
        requests: latencies.len(),
        wall_ms,
        rps: latencies.len() as f64 / (wall_ms / 1e3),
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
    }
}

fn main() {
    let mut addr: Option<String> = None;
    let mut requests = 500usize;
    let mut connections = vec![1usize, 8];
    let mut records = 10_000usize;
    let mut out_path = "BENCH_serve.json".to_string();
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--requests" => {
                requests = value("--requests")
                    .parse()
                    .unwrap_or_else(|_| die("bad --requests"))
            }
            "--connections" => {
                connections = value("--connections")
                    .split(',')
                    .map(|tok| tok.trim().parse().unwrap_or_else(|_| die("bad --connections")))
                    .collect()
            }
            "--records" => {
                records = value("--records")
                    .parse()
                    .unwrap_or_else(|_| die("bad --records"))
            }
            "--out" => out_path = value("--out"),
            "--check" => check = true,
            _ => die("usage: loadgen [--addr HOST:PORT] [--requests N] [--connections a,b,…] [--records N] [--out PATH] [--check]"),
        }
    }
    if check {
        requests = 5;
        connections = vec![1, 2];
        records = 2_000;
    }

    // Self-contained mode: host an in-process server.
    let mut server_thread = None;
    let addr = match addr {
        Some(addr) => addr,
        None => {
            let server = Server::bind("127.0.0.1:0", Ledger::in_memory())
                .unwrap_or_else(|e| die(&format!("bind: {e}")));
            let local = server.local_addr().expect("bound listener has an address");
            eprintln!("loadgen: in-process server on {local}");
            server_thread = Some(std::thread::spawn(move || server.run()));
            local.to_string()
        }
    };

    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let runs: Vec<LoadRun> = connections
        .iter()
        .map(|&c| {
            eprintln!("loadgen: level c = {c} ({requests} requests/connection)");
            run_level(&addr, c, requests, records)
        })
        .collect();
    let report = ServeReport {
        schema: SCHEMA.into(),
        host_threads,
        dataset_records: records,
        runs,
        note: if check {
            "smoke mode (--check): numbers are not a baseline".into()
        } else {
            format!("hardened batch (mean + p90 + iqr) per request; host_threads = {host_threads}")
        },
    };

    let json = report.to_json();
    let parsed = ServeReport::from_json(&json)
        .unwrap_or_else(|e| panic!("schema round-trip failed to parse: {e}"));
    assert_eq!(parsed, report, "schema round-trip changed the report");

    if server_thread.is_some() {
        let mut connection = Connection::open(&addr).unwrap_or_else(|e| die(&e.to_string()));
        let _ = connection.shutdown();
    }
    if let Some(handle) = server_thread {
        let _ = handle.join();
    }

    if check {
        println!("loadgen --check OK: schema {SCHEMA} round-trips");
    } else {
        std::fs::write(&out_path, &json).unwrap_or_else(|e| die(&format!("write {out_path}: {e}")));
        println!("wrote {out_path}");
        print!("{json}");
    }
}
