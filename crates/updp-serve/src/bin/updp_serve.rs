//! The `updp-serve` server binary.
//!
//! ```text
//! updp-serve [--addr HOST:PORT] [--ledger PATH] [--port-file PATH]
//!            [--buffer-rows N] [--buffer-age-ms MS]
//!            [--workers N] [--max-conns N]
//! ```
//!
//! * `--addr` — bind address; default `127.0.0.1:7817`. Use port 0
//!   for an ephemeral port (the chosen port is printed and, with
//!   `--port-file`, written to a file scripts can poll — the CI smoke
//!   step does exactly that).
//! * `--ledger` — budget-snapshot path; default
//!   `updp-serve-ledger.json` in the working directory. The snapshot
//!   is reloaded on start, so spent budget survives restarts.
//! * `--port-file` — after binding, write the chosen port (decimal,
//!   one line) to this path.
//! * `--buffer-rows` / `--buffer-age-ms` — the streaming write-buffer
//!   thresholds (DESIGN.md §8): appends coalesce into a pending delta
//!   log and publish one snapshot when either threshold is hit, or on
//!   explicit `POST /v1/flush`. Default `--buffer-rows 1`: every
//!   append publishes immediately (the historical behaviour).
//! * `--workers` — reactor worker shards (DESIGN.md §10). Default 0:
//!   one shard per available hardware thread.
//! * `--max-conns` — live-connection cap across all shards; beyond it
//!   new connections are answered with a structured 503 `overloaded`
//!   and closed. Default 4096.
//! * `--no-metrics` — disable the flight recorder (DESIGN.md §11);
//!   `/v1/metrics` and `/v1/trace` then render empty families. The
//!   recorder is observe-only, so released bytes are identical either
//!   way.
//! * `--log-json` — emit one structured JSON line per request on
//!   stderr (the flight-recorder stream).
//! * `--threads` — worker count for the deterministic parallel data
//!   kernels (the cold sorted-copy build, DESIGN.md §12); sets
//!   `UPDP_THREADS` for this process. `0`/unset: auto (available
//!   parallelism). Released bytes are identical at any value — the §5
//!   contract — so this is purely a performance knob.

use updp_serve::{FlushPolicy, Ledger, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: updp-serve [--addr HOST:PORT] [--ledger PATH] [--port-file PATH] \
         [--buffer-rows N] [--buffer-age-ms MS] [--workers N] [--max-conns N] \
         [--no-metrics] [--log-json] [--threads N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7817".to_string();
    let mut ledger_path = "updp-serve-ledger.json".to_string();
    let mut port_file: Option<String> = None;
    let mut buffer_rows = 1usize;
    let mut buffer_age_ms = 200u64;
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--ledger" => ledger_path = value("--ledger"),
            "--port-file" => port_file = Some(value("--port-file")),
            "--buffer-rows" => {
                buffer_rows = value("--buffer-rows").parse().unwrap_or_else(|_| usage())
            }
            "--buffer-age-ms" => {
                buffer_age_ms = value("--buffer-age-ms").parse().unwrap_or_else(|_| usage())
            }
            "--workers" => config.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--max-conns" => {
                config.max_connections = value("--max-conns").parse().unwrap_or_else(|_| usage())
            }
            "--no-metrics" => config.metrics = false,
            "--log-json" => config.log_json = true,
            "--threads" => {
                let threads: usize = value("--threads").parse().unwrap_or_else(|_| usage());
                // Before any worker thread exists, so the write is
                // race-free; the kernels re-read it per build.
                std::env::set_var(updp_core::parallel::THREADS_ENV, threads.to_string());
            }
            _ => usage(),
        }
    }
    let policy = if buffer_rows <= 1 {
        FlushPolicy::immediate()
    } else {
        FlushPolicy::buffered(buffer_rows, std::time::Duration::from_millis(buffer_age_ms))
    };

    let ledger = match Ledger::open(std::path::Path::new(&ledger_path)) {
        Ok(ledger) => ledger,
        Err(e) => {
            eprintln!("updp-serve: {e}");
            std::process::exit(1);
        }
    };
    let server = match Server::bind_with_config(&addr, ledger, policy, config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("updp-serve: bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let local = server.local_addr().expect("bound listener has an address");
    println!(
        "updp-serve listening on http://{local} (ledger: {ledger_path}, workers: {})",
        config.resolved_workers()
    );
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", local.port())) {
            eprintln!("updp-serve: write {path}: {e}");
            std::process::exit(1);
        }
    }
    match server.run() {
        Ok(drain) => println!(
            "updp-serve: clean shutdown ({} drained, {} aborted)",
            drain.drained, drain.aborted
        ),
        Err(e) => {
            eprintln!("updp-serve: {e}");
            std::process::exit(1);
        }
    }
}
