//! A small blocking client over the same first-party HTTP codec —
//! shared by the `serve-client` CLI, the `loadgen` driver, and the
//! end-to-end tests.

use crate::http::{read_response, write_request, HttpError};
use std::io::BufReader;
use std::net::TcpStream;
use updp_core::json::JsonValue;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach or talk to the server.
    Transport(String),
    /// The server answered with a non-2xx status; the JSON body is
    /// preserved for the caller.
    Status {
        /// The HTTP status.
        status: u16,
        /// The response body (structured error JSON).
        body: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(reason) => write!(f, "transport: {reason}"),
            ClientError::Status { status, body } => write!(f, "http {status}: {body}"),
        }
    }
}

impl From<HttpError> for ClientError {
    fn from(e: HttpError) -> Self {
        ClientError::Transport(e.to_string())
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Transport(e.to_string())
    }
}

/// One keep-alive connection to a server.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Opens a connection to `addr` (`host:port`).
    pub fn open(addr: &str) -> Result<Connection, ClientError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ClientError::Transport(format!("connect {addr}: {e}")))?;
        // Requests are written as head + body; see the matching
        // server-side NODELAY note.
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection {
            reader,
            writer: stream,
        })
    }

    /// Sends one request and reads the response `(status, body)`
    /// without interpreting the status.
    pub fn request_raw(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, String), ClientError> {
        write_request(&mut self.writer, method, path, body)?;
        Ok(read_response(&mut self.reader)?)
    }

    /// Like [`Connection::request_raw`] but turns non-2xx statuses
    /// into [`ClientError::Status`].
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> Result<String, ClientError> {
        let (status, body) = self.request_raw(method, path, body)?;
        if (200..300).contains(&status) {
            Ok(body)
        } else {
            Err(ClientError::Status { status, body })
        }
    }

    /// `POST /v1/register` with scalar data.
    pub fn register(
        &mut self,
        name: &str,
        budget: f64,
        data: &[f64],
    ) -> Result<String, ClientError> {
        let body = JsonValue::object(vec![
            ("name", name.into()),
            ("budget", budget.into()),
            ("data", JsonValue::numbers(data)),
        ])
        .to_compact();
        self.request("POST", "/v1/register", &body)
    }

    /// `POST /v1/append` with scalar data (buffered per the server's
    /// flush policy; see [`Connection::flush`]).
    pub fn append(&mut self, name: &str, data: &[f64]) -> Result<String, ClientError> {
        let body = JsonValue::object(vec![
            ("name", name.into()),
            ("data", JsonValue::numbers(data)),
        ])
        .to_compact();
        self.request("POST", "/v1/append", &body)
    }

    /// `POST /v1/flush`: publish the dataset's pending delta log.
    pub fn flush(&mut self, name: &str) -> Result<String, ClientError> {
        let body = JsonValue::object(vec![("name", name.into())]).to_compact();
        self.request("POST", "/v1/flush", &body)
    }

    /// `POST /v1/query` with a pre-rendered body.
    pub fn query(&mut self, body: &str) -> Result<String, ClientError> {
        self.request("POST", "/v1/query", body)
    }

    /// `POST /v1/shutdown`.
    pub fn shutdown(&mut self) -> Result<String, ClientError> {
        self.request("POST", "/v1/shutdown", "")
    }

    /// `GET /v1/healthz`: uptime, worker count, active connections,
    /// and pending delta-log rows per dataset.
    pub fn healthz(&mut self) -> Result<String, ClientError> {
        self.request("GET", "/v1/healthz", "")
    }

    /// `GET /v1/metrics`: the Prometheus text exposition.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        self.request("GET", "/v1/metrics", "")
    }

    /// `GET /v1/metrics?format=json`: the same families as JSON
    /// (what `loadgen` scrapes for server-side latency).
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        self.request("GET", "/v1/metrics?format=json", "")
    }

    /// `GET /v1/trace`: the buffered flight-recorder events.
    pub fn trace(&mut self) -> Result<String, ClientError> {
        self.request("GET", "/v1/trace", "")
    }
}

/// Builds a single-dataset query body (the shape `serve-client` and
/// `loadgen` send).
pub fn query_body(
    dataset: &str,
    seed: u64,
    raw: bool,
    queries: &[(&str, f64, Option<f64>)],
) -> String {
    let queries = queries
        .iter()
        .map(|&(kind, epsilon, q)| {
            let mut fields = vec![("kind", kind.into()), ("epsilon", epsilon.into())];
            if let Some(q) = q {
                fields.push(("q", q.into()));
            }
            JsonValue::object(fields)
        })
        .collect();
    JsonValue::object(vec![
        ("dataset", dataset.into()),
        ("seed", (seed as f64).into()),
        ("raw", raw.into()),
        ("queries", JsonValue::Array(queries)),
    ])
    .to_compact()
}

/// One named-estimator query for [`query_body_named`].
#[derive(Debug, Clone)]
pub struct NamedQuery<'a> {
    /// Estimator registry name (`"mean"`, `"kv18"`, …).
    pub estimator: &'a str,
    /// Nominal ε.
    pub epsilon: f64,
    /// Estimator-specific parameters.
    pub params: Vec<(&'a str, f64)>,
}

/// Builds a query body addressing estimators by catalog name with
/// per-query `params` objects (the general wire shape).
pub fn query_body_named(dataset: &str, seed: u64, raw: bool, queries: &[NamedQuery<'_>]) -> String {
    let queries = queries
        .iter()
        .map(|query| {
            let mut fields = vec![
                ("estimator", query.estimator.into()),
                ("epsilon", query.epsilon.into()),
            ];
            if !query.params.is_empty() {
                fields.push((
                    "params",
                    JsonValue::object(
                        query
                            .params
                            .iter()
                            .map(|&(name, v)| (name, v.into()))
                            .collect(),
                    ),
                ));
            }
            JsonValue::object(fields)
        })
        .collect();
    JsonValue::object(vec![
        ("dataset", dataset.into()),
        ("seed", (seed as f64).into()),
        ("raw", raw.into()),
        ("queries", JsonValue::Array(queries)),
    ])
    .to_compact()
}
