//! The JSON wire format (requests in, responses out).
//!
//! Documented as a contract in DESIGN.md §6 and exercised end-to-end
//! by the CI smoke step. Everything flows through the shared
//! [`updp_core::json`] codec; responses are compact JSON (one line).
//!
//! A query names its estimator either as `"estimator"` (any name in
//! the server's catalog — universal or baseline) or via the historical
//! alias `"kind"`; estimator-specific parameters ride in a `"params"`
//! object of numbers, with the historical top-level `"q"` still
//! accepted for quantiles:
//!
//! ```json
//! {"kind": "quantile", "q": 0.9, "epsilon": 0.2}
//! {"estimator": "kv18", "epsilon": 0.2,
//!  "params": {"r": 1000, "sigma_min": 0.1, "sigma_max": 100}}
//! ```

use crate::engine::{QueryOutcome, QuerySpec, ReleaseInfo, DEFAULT_BOUND};
use crate::ledger::Account;
use updp_core::json::JsonValue;

/// A parse failure, reported to the client as a `bad_request` error.
#[derive(Debug)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl From<String> for WireError {
    fn from(s: String) -> Self {
        WireError(s)
    }
}

/// Extracts column-major data from a payload: either `"data": [x, …]`
/// (a dimension-1 dataset) or `"columns": [[x, …], …]`.
fn parse_columns(obj: &updp_core::json::Object<'_>) -> Result<Vec<Vec<f64>>, WireError> {
    let numbers = |value: &JsonValue, what: &str| -> Result<Vec<f64>, String> {
        value
            .as_array(what)?
            .iter()
            .map(|x| x.as_f64(what))
            .collect()
    };
    match (obj.opt("data"), obj.opt("columns")) {
        (Some(data), None) => Ok(vec![numbers(data, "data")?]),
        (None, Some(columns)) => columns
            .as_array("columns")?
            .iter()
            .map(|c| numbers(c, "column").map_err(WireError))
            .collect(),
        (Some(_), Some(_)) => Err(WireError("give `data` or `columns`, not both".into())),
        (None, None) => Err(WireError("missing `data` (or `columns`)".into())),
    }
}

/// Parsed `POST /v1/register` body.
#[derive(Debug, PartialEq)]
pub struct RegisterRequest {
    /// Dataset name (= stable id).
    pub name: String,
    /// Total ε budget for the dataset's lifetime.
    pub budget: f64,
    /// Column-major data.
    pub columns: Vec<Vec<f64>>,
}

/// Parses a register body: `{"name", "budget", "data"|"columns"}`.
pub fn parse_register(body: &str) -> Result<RegisterRequest, WireError> {
    let doc = JsonValue::parse(body)?;
    let obj = doc.as_object("register request")?;
    Ok(RegisterRequest {
        name: obj.get_str("name")?,
        budget: obj.get_f64("budget")?,
        columns: parse_columns(&obj)?,
    })
}

/// Parses an append body: `{"name", "data"|"columns"}`.
pub fn parse_append(body: &str) -> Result<(String, Vec<Vec<f64>>), WireError> {
    let doc = JsonValue::parse(body)?;
    let obj = doc.as_object("append request")?;
    Ok((obj.get_str("name")?, parse_columns(&obj)?))
}

/// Parses a drop body: `{"name"}`.
pub fn parse_drop(body: &str) -> Result<String, WireError> {
    let doc = JsonValue::parse(body)?;
    Ok(doc.as_object("drop request")?.get_str("name")?)
}

/// Parses a flush body: `{"name"}`.
pub fn parse_flush(body: &str) -> Result<String, WireError> {
    let doc = JsonValue::parse(body)?;
    Ok(doc.as_object("flush request")?.get_str("name")?)
}

/// Parsed `POST /v1/query` body.
#[derive(Debug, PartialEq)]
pub struct QueryRequest {
    /// Target dataset name.
    pub dataset: String,
    /// Request seed: the response is bit-reproducible given it.
    pub seed: u64,
    /// `true` opts out of the hardened snapping release.
    pub raw: bool,
    /// Clamp bound for hardened releases.
    pub bound: f64,
    /// The batch, in order.
    pub specs: Vec<QuerySpec>,
}

fn parse_spec(q: &JsonValue) -> Result<QuerySpec, WireError> {
    let q = q.as_object("query")?;
    let estimator = match (q.opt("estimator"), q.opt("kind")) {
        (Some(name), None) | (None, Some(name)) => name.as_str("estimator")?.to_string(),
        (Some(_), Some(_)) => return Err(WireError("give `estimator` or `kind`, not both".into())),
        (None, None) => return Err(WireError("missing `estimator` (or `kind`)".into())),
    };
    let mut options: Vec<(String, f64)> = Vec::new();
    // Historical shape: a top-level `q` is the quantile level, and the
    // legacy parser read it only for `kind: "quantile"` — a stray `q`
    // on any other kind was ignored. Preserve both halves of that
    // contract; the general mechanism is the `params` object.
    if estimator == "quantile" {
        if let Some(qlevel) = q.opt("q") {
            options.push(("q".into(), qlevel.as_f64("q")?));
        }
    }
    if let Some(params) = q.opt("params") {
        match params {
            JsonValue::Object(fields) => {
                for (name, value) in fields {
                    let value = value.as_f64(name)?;
                    if options.iter().any(|(n, _)| n == name) {
                        return Err(WireError(format!("duplicate parameter `{name}`")));
                    }
                    options.push((name.clone(), value));
                }
            }
            _ => return Err(WireError("`params` must be an object of numbers".into())),
        }
    }
    Ok(QuerySpec {
        estimator,
        epsilon: q.get_f64("epsilon")?,
        options,
    })
}

/// Parses a query body:
/// `{"dataset", "seed", "raw"?, "bound"?, "queries": [{"estimator"|"kind",
/// "epsilon", "q"?, "params"?}, …]}`.
pub fn parse_query(body: &str) -> Result<QueryRequest, WireError> {
    let doc = JsonValue::parse(body)?;
    let obj = doc.as_object("query request")?;
    let seed = obj.get_f64("seed")?;
    // JSON numbers are f64: integers above 2^53 would be silently
    // rounded, breaking "bit-reproducible from the request seed" —
    // reject them instead of guessing.
    const MAX_SEED: f64 = 9_007_199_254_740_992.0; // 2^53
                                                   // updp-lint: allow(R5, reason="fract() == 0.0 is the exact integrality test for a wire seed; a non-integer seed must be rejected, never rounded (bit-reproducibility)")
    if !(seed >= 0.0 && seed.fract() == 0.0 && seed <= MAX_SEED) {
        return Err(WireError(format!(
            "seed must be an integer in [0, 2^53], got {seed}"
        )));
    }
    let raw = match obj.opt("raw") {
        Some(JsonValue::Bool(b)) => *b,
        Some(_) => return Err(WireError("`raw` must be a boolean".into())),
        None => false,
    };
    let bound = match obj.opt("bound") {
        Some(v) => v.as_f64("bound")?,
        None => DEFAULT_BOUND,
    };
    let specs = obj
        .get_array("queries")?
        .iter()
        .map(parse_spec)
        .collect::<Result<Vec<_>, _>>()?;
    if specs.is_empty() {
        return Err(WireError("empty query batch".into()));
    }
    Ok(QueryRequest {
        dataset: obj.get_str("dataset")?,
        seed: seed as u64,
        raw,
        bound,
        specs,
    })
}

/// `{"error": {"code", "message"}}`.
pub fn error_body(code: &str, message: &str) -> String {
    JsonValue::object(vec![(
        "error",
        JsonValue::object(vec![("code", code.into()), ("message", message.into())]),
    )])
    .to_compact()
}

/// Renders the `/v1/healthz` readiness body: liveness plus uptime,
/// worker count, active connections, and per-dataset pending
/// delta-log rows (DESIGN.md §8) so operators can see unflushed data.
pub fn healthz_body(
    uptime_ms: u64,
    workers: usize,
    active_connections: usize,
    pending: &[(String, usize)],
) -> String {
    let datasets = pending
        .iter()
        .map(|(name, rows)| {
            JsonValue::object(vec![
                ("name", name.as_str().into()),
                ("pending_rows", (*rows).into()),
            ])
        })
        .collect();
    JsonValue::object(vec![
        ("ok", true.into()),
        ("uptime_ms", (uptime_ms as f64).into()),
        ("workers", workers.into()),
        ("active_connections", active_connections.into()),
        ("datasets", JsonValue::Array(datasets)),
    ])
    .to_compact()
}

/// Renders the `/v1/trace` body: the flight recorder's buffered
/// request events, oldest first.
pub fn trace_body(events: &[updp_obs::TraceEvent]) -> String {
    JsonValue::object(vec![(
        "events",
        JsonValue::Array(events.iter().map(updp_obs::TraceEvent::to_json).collect()),
    )])
    .to_compact()
}

/// The budget trailer attached to dataset-touching responses.
pub fn budget_json(account: &Account) -> JsonValue {
    JsonValue::object(vec![
        ("total", account.budget.into()),
        ("spent", account.spent.into()),
        ("remaining", account.remaining().into()),
    ])
}

fn strings(items: &[&str]) -> JsonValue {
    JsonValue::Array(items.iter().map(|&s| s.into()).collect())
}

/// Renders one query outcome as its wire object.
pub fn outcome_json(outcome: &QueryOutcome) -> JsonValue {
    match outcome {
        QueryOutcome::Released {
            kind,
            assumptions,
            privacy,
            values,
            epsilon_charged,
            release,
        } => {
            let release = match release {
                ReleaseInfo::Raw => JsonValue::object(vec![("snapped", false.into())]),
                ReleaseInfo::Snapped {
                    lambdas,
                    bound,
                    inflation,
                } => JsonValue::object(vec![
                    ("snapped", true.into()),
                    ("lambdas", JsonValue::numbers(lambdas)),
                    ("bound", (*bound).into()),
                    ("epsilon_inflation", (*inflation).into()),
                ]),
            };
            JsonValue::object(vec![
                ("kind", (*kind).into()),
                ("assumptions", strings(assumptions)),
                ("privacy", (*privacy).into()),
                ("values", JsonValue::numbers(values)),
                ("epsilon_charged", (*epsilon_charged).into()),
                ("release", release),
            ])
        }
        QueryOutcome::Refused { kind, refusal } => JsonValue::object(vec![
            ("kind", (*kind).into()),
            (
                "error",
                JsonValue::object(vec![
                    ("code", "budget_exhausted".into()),
                    ("requested", refusal.requested.into()),
                    ("available", refusal.available.into()),
                ]),
            ),
        ]),
        QueryOutcome::Failed { kind, message } => JsonValue::object(vec![
            ("kind", (*kind).into()),
            (
                "error",
                JsonValue::object(vec![
                    ("code", "estimator_failed".into()),
                    ("message", message.as_str().into()),
                ]),
            ),
        ]),
    }
}

/// Renders a full query response body.
pub fn query_response(
    request: &QueryRequest,
    outcomes: &[QueryOutcome],
    account: &Account,
) -> String {
    JsonValue::object(vec![
        ("dataset", request.dataset.as_str().into()),
        ("seed", (request.seed as f64).into()),
        ("raw", request.raw.into()),
        (
            "results",
            JsonValue::Array(outcomes.iter().map(outcome_json).collect()),
        ),
        ("budget", budget_json(account)),
    ])
    .to_compact()
}

/// Renders the `/v1/estimators` catalog listing: every servable
/// estimator with its statistic, privacy guarantee, Table 1
/// assumptions, and declared parameters.
pub fn estimators_response<'a>(
    estimators: impl Iterator<Item = &'a dyn updp_statistical::Estimator>,
) -> String {
    let rows = estimators
        .map(|est| {
            let params = est
                .params()
                .iter()
                .map(|spec| {
                    let mut fields = vec![
                        ("name", spec.name.into()),
                        ("required", spec.required.into()),
                    ];
                    if let Some(default) = spec.default {
                        fields.push(("default", default.into()));
                    }
                    fields.push(("doc", spec.doc.into()));
                    JsonValue::object(fields)
                })
                .collect();
            JsonValue::object(vec![
                ("name", est.name().into()),
                ("statistic", est.statistic().into()),
                ("privacy", est.privacy().into()),
                ("assumptions", strings(est.assumptions())),
                ("multi_column", est.multi_column().into()),
                ("params", JsonValue::Array(params)),
            ])
        })
        .collect();
    JsonValue::object(vec![("estimators", JsonValue::Array(rows))]).to_compact()
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::ledger::Refusal;

    #[test]
    fn register_parses_scalar_and_columns() {
        let scalar = parse_register(r#"{"name":"a","budget":1.5,"data":[1,2,3]}"#).unwrap();
        assert_eq!(scalar.columns, vec![vec![1.0, 2.0, 3.0]]);
        let multi = parse_register(r#"{"name":"m","budget":2,"columns":[[1,2],[3,4]]}"#).unwrap();
        assert_eq!(multi.columns.len(), 2);
        assert!(parse_register(r#"{"name":"x","budget":1}"#).is_err());
        assert!(parse_register(r#"{"name":"x","budget":1,"data":[1],"columns":[[1]]}"#).is_err());
    }

    #[test]
    fn query_parses_the_full_surface() {
        let req = parse_query(
            r#"{"dataset":"a","seed":42,"raw":true,"bound":100,
                "queries":[{"kind":"mean","epsilon":0.1},
                           {"kind":"quantile","q":0.9,"epsilon":0.2},
                           {"kind":"multi-mean","epsilon":0.3}]}"#,
        )
        .unwrap();
        assert_eq!(req.seed, 42);
        assert!(req.raw);
        assert_eq!(req.bound, 100.0);
        assert_eq!(req.specs.len(), 3);
        assert_eq!(req.specs[1].estimator, "quantile");
        assert_eq!(req.specs[1].options, vec![("q".to_string(), 0.9)]);
    }

    #[test]
    fn query_parses_named_estimators_with_params() {
        let req = parse_query(
            r#"{"dataset":"a","seed":1,"raw":true,
                "queries":[{"estimator":"kv18","epsilon":0.2,
                            "params":{"r":1000,"sigma_min":0.1,"sigma_max":100}},
                           {"estimator":"dl09","epsilon":0.1}]}"#,
        )
        .unwrap();
        assert_eq!(req.specs[0].estimator, "kv18");
        assert_eq!(
            req.specs[0].options,
            vec![
                ("r".to_string(), 1000.0),
                ("sigma_min".to_string(), 0.1),
                ("sigma_max".to_string(), 100.0)
            ]
        );
        assert!(req.specs[1].options.is_empty());
        // `estimator` and `kind` are exclusive; params must be numbers;
        // a top-level q duplicated in params is rejected.
        assert!(parse_query(
            r#"{"dataset":"a","seed":1,"queries":[{"kind":"mean","estimator":"mean","epsilon":0.1}]}"#
        )
        .is_err());
        assert!(parse_query(
            r#"{"dataset":"a","seed":1,"queries":[{"estimator":"kv18","epsilon":0.1,"params":{"r":"x"}}]}"#
        )
        .is_err());
        assert!(parse_query(
            r#"{"dataset":"a","seed":1,"queries":[{"estimator":"quantile","epsilon":0.1,"q":0.5,"params":{"q":0.9}}]}"#
        )
        .is_err());
    }

    #[test]
    fn stray_q_on_non_quantile_kinds_stays_ignored() {
        // Legacy parser read `q` only for kind = "quantile"; a stray
        // `q` elsewhere was ignored, never an error.
        let req = parse_query(
            r#"{"dataset":"a","seed":1,"queries":[{"kind":"mean","q":0.5,"epsilon":0.1}]}"#,
        )
        .unwrap();
        assert!(req.specs[0].options.is_empty());
    }

    #[test]
    fn query_defaults_are_hardened() {
        let req =
            parse_query(r#"{"dataset":"a","seed":1,"queries":[{"kind":"iqr","epsilon":0.1}]}"#)
                .unwrap();
        assert!(!req.raw, "hardened release must be the default");
        assert_eq!(req.bound, DEFAULT_BOUND);
    }

    #[test]
    fn query_rejects_bad_shapes() {
        assert!(parse_query(r#"{"dataset":"a","seed":-1,"queries":[]}"#).is_err());
        // 2^53 + 2: representable but beyond exact-integer range.
        assert!(parse_query(
            r#"{"dataset":"a","seed":9007199254740994,"queries":[{"kind":"mean","epsilon":0.1}]}"#
        )
        .is_err());
        assert!(parse_query(r#"{"dataset":"a","seed":1,"queries":[]}"#).is_err());
        assert!(parse_query(r#"{"dataset":"a","seed":1,"queries":[{"epsilon":0.1}]}"#).is_err());
    }

    #[test]
    fn refusals_render_as_structured_errors() {
        let body = outcome_json(&QueryOutcome::Refused {
            kind: "mean",
            refusal: Refusal {
                requested: 0.5,
                available: 0.125,
            },
        })
        .to_compact();
        assert_eq!(
            body,
            r#"{"kind":"mean","error":{"code":"budget_exhausted","requested":0.5,"available":0.125}}"#
        );
    }

    #[test]
    fn released_outcomes_echo_assumption_metadata() {
        let body = outcome_json(&QueryOutcome::Released {
            kind: "kv18",
            assumptions: &["A1", "A2", "A3"],
            privacy: "ε-DP",
            values: vec![1.5],
            epsilon_charged: 0.2,
            release: ReleaseInfo::Raw,
        })
        .to_compact();
        assert!(body.contains(r#""assumptions":["A1","A2","A3"]"#), "{body}");
        assert!(body.contains(r#""privacy":"ε-DP""#), "{body}");
    }

    #[test]
    fn estimator_listing_renders_params() {
        let catalog = crate::engine::EstimatorCatalog::standard();
        let body = estimators_response(catalog.iter());
        let doc = JsonValue::parse(&body).unwrap();
        let rows = doc
            .as_object("listing")
            .unwrap()
            .get_array("estimators")
            .unwrap();
        assert!(rows.len() >= 16, "got {} estimators", rows.len());
        let kv18 = rows
            .iter()
            .map(|r| r.as_object("row").unwrap())
            .find(|r| r.get_str("name").unwrap() == "kv18")
            .expect("kv18 listed");
        assert_eq!(kv18.get_str("statistic").unwrap(), "mean");
        assert_eq!(kv18.get_array("params").unwrap().len(), 3);
    }
}
