//! The event-driven server core: a sharded epoll reactor.
//!
//! Replaces the thread-per-connection loop for the serving path.
//! `--workers N` threads (default: available parallelism) each own an
//! epoll instance; every worker registers the shared listener
//! (`EPOLLEXCLUSIVE` where the kernel supports it, so one accept
//! readiness wakes one shard instead of all of them) plus a wake pipe
//! for event-driven shutdown — no polling timeouts on the hot path.
//!
//! Per connection the worker keeps a non-blocking socket, an
//! incremental [`RequestParser`] (so requests split at any byte
//! boundary by the kernel reassemble correctly), and a bounded write
//! queue. The backpressure contract (DESIGN.md §10):
//!
//! * **write-queue cap** — if a peer stops reading responses while
//!   pipelining requests, the queue exceeds its bound and the next
//!   request is answered with a structured 503 `overloaded`, then the
//!   connection is flushed and torn down. The worker never blocks on
//!   a slow peer.
//! * **connection cap** — beyond `max_connections` the listener still
//!   accepts (so the peer gets an answer instead of a SYN backlog
//!   timeout) but the connection is born with a pre-queued 503 and
//!   closes once it flushes.
//! * **panic isolation** — `route` runs under `catch_unwind`; a
//!   panicking handler costs that request a 500 and its connection,
//!   never the worker or its other connections.
//!
//! Determinism is unaffected: the reactor only reorders *transport*
//! work. Each request is still routed exactly once with its own seed,
//! and ledger ordering keeps the same per-request atomicity it had
//! under thread-per-connection (DESIGN.md §10).

use crate::http::{encode_response_with_type, HttpError, Request, RequestParser};
use crate::metrics::{endpoint_label, ShardMetrics};
use crate::poll::{self, Epoll, Events, WakePipe};
use crate::server::{route, AppState, DrainSummary, ServerConfig, CONTENT_TYPE_JSON};
use crate::wire;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use updp_obs::TraceEvent;

/// Slab token of the wake pipe.
const TOKEN_WAKE: u64 = u64::MAX;
/// Slab token of the shared listener.
const TOKEN_LISTENER: u64 = u64::MAX - 1;
/// Events delivered per `epoll_wait` call.
const EVENTS_CAP: usize = 1024;
/// Read chunk size (one scratch buffer per worker, reused).
const READ_CHUNK: usize = 64 * 1024;
/// Max socket reads per connection per readiness event: level-
/// triggered epoll re-delivers, so capping keeps one firehose peer
/// from starving the rest of the shard.
const MAX_READS_PER_TICK: usize = 16;
/// How long drain mode waits for queued responses to flush before
/// force-closing (shutdown must not hang on a stalled peer). The
/// shutdown response advertises it as `drain_deadline_ms`.
pub(crate) const DRAIN_DEADLINE: Duration = Duration::from_secs(2);
/// Epoll timeout while draining, so the deadline is observed even
/// with no socket activity.
const DRAIN_TICK_MS: i32 = 25;

/// State shared by every worker shard. The live-connection count
/// (the accept-then-503 cap) lives on [`AppState`] so `/v1/healthz`
/// and `/v1/metrics` can read it; the reactor is its only writer.
struct Shared {
    state: Arc<AppState>,
    /// One wake handle per worker; shutdown wakes every shard.
    wakes: Vec<poll::WakeHandle>,
}

/// One connection owned by one worker shard.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Pending response bytes; `sent` is the flush cursor.
    out: Vec<u8>,
    sent: usize,
    /// No more requests will be read; close once `out` drains.
    closing: bool,
    /// The interest set currently registered with epoll.
    interest: u32,
    /// When the first byte of the in-progress request arrived
    /// (metrics only; `None` while metrics are off). Taken at
    /// dispatch, so pipelined followers in the same batch report a
    /// parse latency of 0.
    req_started: Option<Instant>,
    /// When the write queue last went from empty to non-empty
    /// (metrics only): the start point of the write-flush latency.
    out_since: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            parser: RequestParser::new(),
            out: Vec::new(),
            sent: 0,
            closing: false,
            interest: 0,
            req_started: None,
            out_since: None,
        }
    }

    /// Bytes queued but not yet accepted by the kernel.
    fn queued(&self) -> usize {
        self.out.len() - self.sent
    }

    fn enqueue(&mut self, status: u16, body: &str, keep_alive: bool) {
        self.enqueue_typed(status, body, CONTENT_TYPE_JSON, keep_alive);
    }

    fn enqueue_typed(&mut self, status: u16, body: &str, content_type: &str, keep_alive: bool) {
        self.out.extend_from_slice(&encode_response_with_type(
            status,
            body,
            keep_alive,
            content_type,
        ));
        if !keep_alive {
            self.closing = true;
        }
    }

    fn desired_interest(&self) -> u32 {
        // Read interest stays on even while closing: a lingering
        // close sinks whatever the peer already sent, so the final
        // response (503/400/shutdown) is never destroyed by the RST
        // that closing a socket with unread receive data triggers.
        let mut interest = poll::IN | poll::RDHUP;
        if self.queued() > 0 {
            interest |= poll::OUT;
        }
        interest
    }
}

/// Runs the reactor until shutdown completes. Consumes the listener;
/// returns the summed per-shard [`DrainSummary`] once every shard has
/// drained.
pub(crate) fn run(
    listener: TcpListener,
    state: Arc<AppState>,
    config: ServerConfig,
) -> io::Result<DrainSummary> {
    listener.set_nonblocking(true)?;
    let workers = config.resolved_workers();
    let mut pipes = Vec::with_capacity(workers);
    let mut wakes = Vec::with_capacity(workers);
    for _ in 0..workers {
        let pipe = WakePipe::new()?;
        wakes.push(pipe.handle()?);
        pipes.push(pipe);
    }
    let shared = Shared { state, wakes };
    let shared = &shared;
    let config = &config;
    std::thread::scope(|scope| {
        let mut pipes = pipes.into_iter();
        let first = match pipes.next() {
            Some(pipe) => pipe,
            None => WakePipe::new()?, // unreachable: workers >= 1
        };
        let mut handles = Vec::new();
        for (offset, pipe) in pipes.enumerate() {
            let listener = listener.try_clone()?;
            // Panics cannot escape a worker (route runs under
            // catch_unwind); a worker exiting early only happens on
            // catastrophic epoll failure, which worker 0 reports too.
            handles.push(scope.spawn(move || {
                match Worker::new(offset + 1, listener, pipe, shared, config) {
                    Ok(worker) => worker.serve().unwrap_or_default(),
                    Err(_) => DrainSummary::default(),
                }
            }));
        }
        // Worker 0 runs on the calling thread; the scope joins the
        // rest before returning.
        let mut summary = Worker::new(0, listener, first, shared, config)?.serve()?;
        for handle in handles {
            let shard = handle.join().unwrap_or_default();
            summary.drained += shard.drained;
            summary.aborted += shard.aborted;
        }
        Ok(summary)
    })
}

/// One shard: an epoll instance plus the connections it owns.
struct Worker<'a> {
    epoll: Epoll,
    listener: TcpListener,
    pipe: WakePipe,
    shared: &'a Shared,
    config: &'a ServerConfig,
    slab: Vec<Option<Conn>>,
    /// Reusable slab indices.
    free: Vec<usize>,
    /// Indices freed during the current tick — merged into `free`
    /// only after the event batch, so a stale event in the same batch
    /// can never address a recycled slot.
    freed: Vec<usize>,
    scratch: Vec<u8>,
    draining: bool,
    deadline: Option<Instant>,
    listener_active: bool,
    /// This shard's pre-resolved metric handles.
    shard: ShardMetrics,
    /// Connections that flushed and closed cleanly during drain.
    drained: usize,
    /// Connections force-closed at the drain deadline.
    aborted: usize,
}

impl<'a> Worker<'a> {
    fn new(
        index: usize,
        listener: TcpListener,
        pipe: WakePipe,
        shared: &'a Shared,
        config: &'a ServerConfig,
    ) -> io::Result<Worker<'a>> {
        let epoll = Epoll::new()?;
        epoll.add(pipe.raw_fd(), TOKEN_WAKE, poll::IN)?;
        let lfd = listener.as_raw_fd();
        // EPOLLEXCLUSIVE needs kernel ≥ 4.5; fall back to a plain add
        // (herd wakeups, still correct) when it is refused.
        if epoll
            .add(lfd, TOKEN_LISTENER, poll::IN | poll::EXCLUSIVE)
            .is_err()
        {
            epoll.add(lfd, TOKEN_LISTENER, poll::IN)?;
        }
        Ok(Worker {
            epoll,
            listener,
            pipe,
            shared,
            config,
            slab: Vec::new(),
            free: Vec::new(),
            freed: Vec::new(),
            scratch: vec![0u8; READ_CHUNK],
            draining: false,
            deadline: None,
            listener_active: true,
            shard: shared.state.metrics.shard(index),
            drained: 0,
            aborted: 0,
        })
    }

    fn serve(mut self) -> io::Result<DrainSummary> {
        let mut events = Events::with_capacity(EVENTS_CAP);
        loop {
            let timeout = if self.draining { DRAIN_TICK_MS } else { -1 };
            let fired = self.epoll.wait(&mut events, timeout)?;
            self.shard.wakeup();
            for i in 0..fired {
                let Some(event) = events.get(i) else { break };
                match event.token {
                    TOKEN_WAKE => self.pipe.drain(),
                    TOKEN_LISTENER => self.accept_ready(),
                    token => self.conn_ready(token as usize, event),
                }
            }
            if !self.draining && self.shared.state.shutdown_requested() {
                self.enter_drain();
            }
            self.free.append(&mut self.freed);
            if self.draining && self.drain_finished() {
                return Ok(DrainSummary {
                    drained: self.drained,
                    aborted: self.aborted,
                });
            }
        }
    }

    /// Accepts until the backlog is empty. Beyond the connection cap,
    /// connections are still accepted but born closing with a
    /// pre-queued 503 (accept-then-503: the peer gets a structured
    /// answer instead of a connect timeout).
    fn accept_ready(&mut self) {
        while self.listener_active {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                // Transient (ECONNABORTED & friends): the next
                // readiness event retries.
                Err(_) => return,
            };
            // Head + body responses without NODELAY hit Nagle/
            // delayed-ACK stalls (~40 ms) on loopback.
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            if let Some(bytes) = self.config.send_buffer {
                let _ = poll::set_send_buffer(stream.as_raw_fd(), bytes);
            }
            self.shard.accepted();
            let over_cap = self.shared.state.conns.fetch_add(1, Ordering::SeqCst)
                >= self.config.max_connections;
            let mut conn = Conn::new(stream);
            if over_cap {
                self.shard.rejected_at_cap();
                conn.enqueue(
                    503,
                    &wire::error_body("overloaded", "connection limit reached"),
                    false,
                );
            }
            let idx = match self.free.pop() {
                Some(idx) => idx,
                None => {
                    self.slab.push(None);
                    self.slab.len() - 1
                }
            };
            let interest = conn.desired_interest();
            match self
                .epoll
                .add(conn.stream.as_raw_fd(), idx as u64, interest)
            {
                Ok(()) => {
                    conn.interest = interest;
                    if let Some(slot) = self.slab.get_mut(idx) {
                        *slot = Some(conn);
                    }
                }
                Err(_) => self.discard(idx, conn),
            }
        }
    }

    /// Handles readiness on connection `idx`. Stale tokens (the
    /// connection closed earlier in this batch) are ignored.
    fn conn_ready(&mut self, idx: usize, event: poll::Event) {
        let Some(mut conn) = self.slab.get_mut(idx).and_then(Option::take) else {
            return;
        };
        let mut dead = event.failed;
        if !dead && event.writable {
            dead = flush_out(&mut conn, &self.shard);
        }
        if !dead && event.readable {
            dead = if conn.closing {
                // Lingering close: discard peer bytes so the close
                // (once `out` drains) sends FIN, not an RST that
                // would destroy the final response in flight.
                sink(&mut conn, &mut self.scratch, &self.shard)
            } else {
                read_and_dispatch(
                    &mut conn,
                    &mut self.scratch,
                    self.shared,
                    self.config,
                    &self.shard,
                )
            };
            if !dead {
                dead = flush_out(&mut conn, &self.shard);
            }
        }
        self.park(idx, conn, dead);
    }

    /// Re-files `conn` into slot `idx` with its epoll interest up to
    /// date — or tears it down when it is dead or finished.
    fn park(&mut self, idx: usize, mut conn: Conn, dead: bool) {
        if dead || (conn.closing && conn.queued() == 0) {
            self.discard(idx, conn);
            return;
        }
        let desired = conn.desired_interest();
        if desired != conn.interest {
            if self
                .epoll
                .modify(conn.stream.as_raw_fd(), idx as u64, desired)
                .is_err()
            {
                self.discard(idx, conn);
                return;
            }
            conn.interest = desired;
        }
        if let Some(slot) = self.slab.get_mut(idx) {
            *slot = Some(conn);
        }
    }

    /// Drops the connection (closing the fd deregisters it) and
    /// releases its slot and global count. Once shutdown has been
    /// requested this is the clean exit — the connection flushed (or
    /// was idle/errored), so it counts as drained. Checked against
    /// the shutdown flag rather than `self.draining` because the
    /// requester's own connection closes in the same event batch as
    /// the request, before this worker enters drain mode. Deadline
    /// force-closes bypass this and count as aborted instead.
    fn discard(&mut self, idx: usize, conn: Conn) {
        drop(conn);
        self.shared.state.conns.fetch_sub(1, Ordering::SeqCst);
        if self.draining || self.shared.state.shutdown_requested() {
            self.drained += 1;
        }
        self.freed.push(idx);
    }

    /// Shutdown observed: stop accepting, mark every connection
    /// closing (idle ones close now; ones with queued responses flush
    /// first), and start the drain deadline.
    fn enter_drain(&mut self) {
        self.draining = true;
        self.deadline = Some(Instant::now() + DRAIN_DEADLINE);
        if self.listener_active {
            let _ = self.epoll.delete(self.listener.as_raw_fd());
            self.listener_active = false;
        }
        for idx in 0..self.slab.len() {
            let Some(mut conn) = self.slab.get_mut(idx).and_then(Option::take) else {
                continue;
            };
            conn.closing = true;
            self.park(idx, conn, false);
        }
    }

    /// True when nothing is left to flush (or the deadline passed, in
    /// which case the stragglers are force-closed).
    fn drain_finished(&mut self) -> bool {
        if self.slab.iter().all(Option::is_none) {
            return true;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            for idx in 0..self.slab.len() {
                if let Some(conn) = self.slab.get_mut(idx).and_then(Option::take) {
                    // Force-close with bytes still queued: aborted,
                    // not drained (so not via `discard`).
                    drop(conn);
                    self.shared.state.conns.fetch_sub(1, Ordering::SeqCst);
                    self.freed.push(idx);
                    self.aborted += 1;
                }
            }
            return true;
        }
        false
    }
}

/// Writes queued bytes until done or the kernel pushes back. Returns
/// true when the connection is dead.
fn flush_out(conn: &mut Conn, shard: &ShardMetrics) -> bool {
    while conn.sent < conn.out.len() {
        match conn.stream.write(conn.out.get(conn.sent..).unwrap_or(&[])) {
            Ok(0) => return true,
            Ok(n) => {
                conn.sent += n;
                shard.bytes_written(n as u64);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Reclaim the flushed prefix so a long-lived slow
                // reader cannot grow the buffer unboundedly behind
                // the cursor.
                if conn.sent > READ_CHUNK {
                    conn.out.drain(..conn.sent);
                    conn.sent = 0;
                }
                return false;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    conn.out.clear();
    conn.sent = 0;
    // Queue fully drained: close out the write-flush latency window.
    if let Some(since) = conn.out_since.take() {
        shard.write_flush_micros(since.elapsed().as_micros() as u64);
    }
    false
}

/// Lingering-close read: consumes and discards peer bytes on a
/// connection that is already closing. Returns true when the
/// connection is dead.
fn sink(conn: &mut Conn, scratch: &mut [u8], shard: &ShardMetrics) -> bool {
    for _ in 0..MAX_READS_PER_TICK {
        match conn.stream.read(scratch) {
            Ok(0) => return false, // peer finished sending
            Ok(n) => {
                shard.bytes_read(n as u64);
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    false
}

/// Reads whatever the socket has (up to the fairness cap), feeds the
/// incremental parser, and routes every completed request. Returns
/// true when the connection is dead.
fn read_and_dispatch(
    conn: &mut Conn,
    scratch: &mut [u8],
    shared: &Shared,
    config: &ServerConfig,
    shard: &ShardMetrics,
) -> bool {
    for _ in 0..MAX_READS_PER_TICK {
        let n = match conn.stream.read(scratch) {
            // EOF. A half-closed peer may still read; flush whatever
            // is queued, then close. An unfinished request in the
            // parser is simply truncated — there is no one to answer.
            Ok(0) => {
                conn.closing = true;
                return false;
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        };
        shard.bytes_read(n as u64);
        if conn.req_started.is_none() && shard.enabled() {
            conn.req_started = Some(Instant::now());
        }
        // updp-lint: allow(R10, reason="io::Read contract bounds n by scratch.len(); a checked form would hide a shim bug instead of surfacing it")
        let requests = match conn.parser.feed(&scratch[..n]) {
            Ok(requests) => requests,
            Err(HttpError::Malformed(reason)) => {
                conn.enqueue(400, &wire::error_body("bad_request", &reason), false);
                return false;
            }
            Err(_) => return true,
        };
        for request in &requests {
            dispatch(conn, request, shared, config, shard);
            if conn.closing {
                // A close-after-this response (shutdown, parse-error,
                // backpressure, Connection: close) ends the session;
                // later pipelined requests are not serviced.
                return false;
            }
        }
        if n < scratch.len() {
            // Short read: the socket is drained for now.
            return false;
        }
    }
    // Fairness cap hit; level-triggered epoll re-delivers readiness.
    false
}

/// Routes one request and enqueues its response, applying the
/// backpressure and panic-isolation contracts. Instrumentation here
/// is strictly observe-only: every status, body byte, and connection
/// fate is identical with metrics on or off.
fn dispatch(
    conn: &mut Conn,
    request: &Request,
    shared: &Shared,
    config: &ServerConfig,
    shard: &ShardMetrics,
) {
    // Backpressure: a peer that pipelines requests without reading
    // responses gets a final structured 503, then teardown. Checked
    // per request so the queue is bounded by the cap plus one
    // response.
    if conn.queued() > config.max_write_queue {
        shard.overloaded();
        conn.enqueue(
            503,
            &wire::error_body(
                "overloaded",
                "write queue full: peer is not reading responses",
            ),
            false,
        );
        return;
    }
    // Parse latency: first socket byte of this batch → dispatch.
    let parse_micros = conn
        .req_started
        .take()
        .map(|t| t.elapsed().as_micros() as u64)
        .unwrap_or(0);
    let is_shutdown = request.method == "POST" && request.path == "/v1/shutdown";
    let handle_started = shard.enabled().then(Instant::now);
    let routed = catch_unwind(AssertUnwindSafe(|| route(&shared.state, request)));
    let handle_micros = handle_started.map_or(0, |t| t.elapsed().as_micros() as u64);
    let (status, dataset, bytes_out) = match routed {
        Ok(routed) => {
            let meta = (routed.status, routed.dataset, routed.body.len() as u64);
            conn.enqueue_typed(
                routed.status,
                &routed.body,
                routed.content_type,
                request.keep_alive && !is_shutdown,
            );
            meta
        }
        // The handler panicked: this request answers 500 and loses
        // its connection; the worker and its other connections are
        // untouched.
        Err(_) => {
            shard.panic_caught();
            let body = wire::error_body("internal", "handler panicked");
            let len = body.len() as u64;
            conn.enqueue(500, &body, false);
            (500, None, len)
        }
    };
    shard.queue_high_water(conn.queued());
    if conn.queued() > 0 && conn.out_since.is_none() && shard.enabled() {
        conn.out_since = Some(Instant::now());
    }
    let metrics = &shared.state.metrics;
    metrics.record_request(
        endpoint_label(&request.path),
        status,
        parse_micros,
        handle_micros,
    );
    if metrics.enabled() {
        let event = TraceEvent {
            id: metrics.next_request_id(),
            shard: shard.index,
            method: request.method.clone(),
            path: request.path.clone(),
            dataset,
            status,
            parse_micros,
            handle_micros,
            bytes_in: request.body.len() as u64,
            bytes_out,
            unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
        };
        if config.log_json {
            // The opt-in --log-json flight-recorder stream: one JSON
            // line per request on stderr, for operators tailing logs.
            // updp-lint: allow(R6, reason="--log-json stderr stream is an operator-facing product surface, gated behind an opt-in config flag")
            eprintln!("{}", event.to_json().to_compact());
        }
        metrics.trace_event(shard.index, event);
    }
    if is_shutdown {
        shared.state.begin_shutdown();
        for wake in &shared.wakes {
            wake.wake();
        }
    }
}
