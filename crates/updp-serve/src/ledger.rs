//! The privacy-budget accountant: a per-dataset ε ledger with a
//! persisted-to-disk snapshot.
//!
//! Every query **atomically reserves** its ε under basic composition
//! (Lemma 2.2: spends add) before any estimator runs, and is refused
//! with a structured [`Refusal`] once the dataset's budget is
//! exhausted. Reservation happens under one mutex per ledger, so the
//! granted total can never exceed `budget + tol` no matter how many
//! threads hammer one dataset — the concurrency test below pins this
//! together with the *determinism of the refusal count*: for a fixed
//! set of equal-ε requests, how many are granted depends only on the
//! budget arithmetic, never on thread interleaving.
//!
//! Persistence: when constructed with a snapshot path, every mutation
//! rewrites the snapshot (JSON via [`updp_core::json`], temp file +
//! rename so a crash never leaves a torn file) *before the caller
//! observes the grant* — but the file I/O happens outside the
//! accounts mutex (see [`Ledger::persist`]) so queries on other
//! datasets only contend on the arithmetic. On startup the snapshot
//! is reloaded, so **restarting the server cannot replay spent
//! budget**: re-registering a known dataset name resumes from its
//! recorded `spent` (and keeps its originally pinned budget), and
//! ledger entries survive even `drop` — budget is a property of the
//! *data subjects*, not of the in-memory copy of the data.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use updp_core::json::JsonValue;
use updp_core::privacy::budget_tolerance;

/// Snapshot schema tag; bump on breaking changes.
pub const SCHEMA: &str = "updp-serve-ledger/v1";

/// Budget state of one dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Account {
    /// Total ε granted to queries against this dataset, ever.
    pub budget: f64,
    /// ε spent so far (monotone non-decreasing, survives restarts).
    pub spent: f64,
}

impl Account {
    /// ε still available.
    pub fn remaining(&self) -> f64 {
        (self.budget - self.spent).max(0.0)
    }
}

/// A structured budget refusal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Refusal {
    /// ε the query asked for.
    pub requested: f64,
    /// ε still available at refusal time.
    pub available: f64,
}

/// Errors from ledger operations other than refusals.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// The dataset has no ledger account.
    UnknownDataset(String),
    /// A budget or ε parameter was non-finite or non-positive.
    BadParameter(String),
    /// The snapshot file could not be read, parsed, or written.
    Snapshot(String),
    /// A ledger lock was poisoned by a panicked thread. Mapped to a
    /// 500 `internal` wire error so one panic cannot cascade into
    /// every worker thread.
    Poisoned,
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::UnknownDataset(name) => write!(f, "no ledger account for `{name}`"),
            LedgerError::BadParameter(reason) => write!(f, "bad ledger parameter: {reason}"),
            LedgerError::Snapshot(reason) => write!(f, "ledger snapshot: {reason}"),
            LedgerError::Poisoned => {
                write!(
                    f,
                    "internal synchronization error: a ledger lock was poisoned"
                )
            }
        }
    }
}

/// The ledger: every account behind one mutex (held only for the
/// budget arithmetic — never across file I/O), optionally mirrored to
/// a snapshot file on each mutation. Snapshot writes serialize on a
/// separate `persist_lock` and re-render the latest state under a
/// brief `accounts` lock, so concurrent writers can never regress the
/// on-disk file to an older state, and queries against *other*
/// datasets only ever contend on the cheap arithmetic section.
#[derive(Debug)]
pub struct Ledger {
    path: Option<PathBuf>,
    accounts: Mutex<HashMap<String, Account>>,
    persist_lock: Mutex<()>,
    /// Budget refusals served per dataset this process lifetime.
    /// Observability only (DESIGN.md §11): never persisted, never
    /// consulted by reservation decisions.
    refusals: Mutex<BTreeMap<String, u64>>,
}

impl Ledger {
    /// An in-memory ledger (tests, `--check` runs).
    pub fn in_memory() -> Self {
        Ledger {
            path: None,
            accounts: Mutex::new(HashMap::new()),
            persist_lock: Mutex::new(()),
            refusals: Mutex::new(BTreeMap::new()),
        }
    }

    /// Opens a ledger backed by `path`, reloading the snapshot if one
    /// exists (a missing file is an empty ledger, not an error).
    pub fn open(path: &Path) -> Result<Self, LedgerError> {
        let accounts = match std::fs::read_to_string(path) {
            Ok(text) => parse_snapshot(&text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => HashMap::new(),
            Err(e) => return Err(LedgerError::Snapshot(format!("read {path:?}: {e}"))),
        };
        Ok(Ledger {
            path: Some(path.into()),
            accounts: Mutex::new(accounts),
            persist_lock: Mutex::new(()),
            refusals: Mutex::new(BTreeMap::new()),
        })
    }

    /// Creates the account for `name`, or re-attaches to an existing
    /// one.
    ///
    /// **The first registration pins the budget.** A name already
    /// present in the ledger — from an earlier registration this run
    /// *or from the reloaded snapshot* — keeps both its recorded
    /// `spent` and its recorded `budget`; the `budget` argument is
    /// ignored. This is what makes drop + re-register (and restart +
    /// re-register) unable to mint fresh ε: raising a budget is an
    /// operator action on the snapshot file, never a wire operation.
    /// The authoritative account is returned so callers can surface
    /// the pinned values.
    pub fn register(&self, name: &str, budget: f64) -> Result<Account, LedgerError> {
        if !(budget.is_finite() && budget > 0.0) {
            return Err(LedgerError::BadParameter(format!(
                "budget must be finite and positive, got {budget}"
            )));
        }
        {
            let mut accounts = self.accounts.lock().map_err(|_| LedgerError::Poisoned)?;
            if let Some(existing) = accounts.get(name) {
                return Ok(*existing);
            }
            accounts.insert(name.into(), Account { budget, spent: 0.0 });
        }
        self.persist()?;
        Ok(Account { budget, spent: 0.0 })
    }

    /// Atomically reserves `eps` of `name`'s budget.
    ///
    /// On success the spend is committed (and persisted) before the
    /// caller runs any mechanism; the new account state is returned.
    /// An exhausted budget yields `Ok(Err(Refusal))` — a *normal*
    /// outcome, distinct from ledger failures.
    pub fn reserve(&self, name: &str, eps: f64) -> Result<Result<Account, Refusal>, LedgerError> {
        Ok(self.reserve_many(name, &[eps])?.pop().expect("one item"))
    }

    /// Reserves a sequence of ε amounts against `name` in one atomic
    /// step: per-item grant/refuse decisions are made in order under
    /// the lock (identical semantics to calling [`Ledger::reserve`]
    /// item by item), but the snapshot is persisted **once**, so a
    /// batch request costs one file write instead of one per query.
    pub fn reserve_many(
        &self,
        name: &str,
        amounts: &[f64],
    ) -> Result<Vec<Result<Account, Refusal>>, LedgerError> {
        for &eps in amounts {
            if !(eps.is_finite() && eps > 0.0) {
                return Err(LedgerError::BadParameter(format!(
                    "epsilon must be finite and positive, got {eps}"
                )));
            }
        }
        let (outcomes, any_granted) = {
            let mut accounts = self.accounts.lock().map_err(|_| LedgerError::Poisoned)?;
            let account = accounts
                .get_mut(name)
                .ok_or_else(|| LedgerError::UnknownDataset(name.into()))?;
            let mut outcomes = Vec::with_capacity(amounts.len());
            let mut any_granted = false;
            for &eps in amounts {
                if account.spent + eps > account.budget + budget_tolerance(account.budget) {
                    outcomes.push(Err(Refusal {
                        requested: eps,
                        available: account.remaining(),
                    }));
                } else {
                    account.spent += eps;
                    any_granted = true;
                    outcomes.push(Ok(*account));
                }
            }
            (outcomes, any_granted)
        };
        let refused = outcomes.iter().filter(|o| o.is_err()).count() as u64;
        if refused > 0 {
            // Observe-only refusal tally for `/v1/metrics`. A poisoned
            // counter map drops the observation rather than surfacing
            // an error into the query path.
            if let Ok(mut refusals) = self.refusals.lock() {
                *refusals.entry(name.into()).or_insert(0) += refused;
            }
        }
        if any_granted {
            // The spend is committed in memory; callers only observe
            // the grant after this persists, so a crash in between
            // loses an unreleased answer, never replays budget.
            self.persist()?;
        }
        Ok(outcomes)
    }

    /// The current account state for `name`.
    pub fn account(&self, name: &str) -> Result<Account, LedgerError> {
        self.accounts
            .lock()
            .map_err(|_| LedgerError::Poisoned)?
            .get(name)
            .copied()
            .ok_or_else(|| LedgerError::UnknownDataset(name.into()))
    }

    /// Budget refusals served per dataset this process lifetime,
    /// sorted by name. Not persisted; resets on restart. Degrades to
    /// an empty list on lock poisoning (observability must not fail
    /// the scrape).
    pub fn refusal_counts(&self) -> Vec<(String, u64)> {
        match self.refusals.lock() {
            Ok(refusals) => refusals.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            Err(_) => Vec::new(),
        }
    }

    /// All accounts as `(name, account)` rows, sorted by name.
    pub fn list(&self) -> Result<Vec<(String, Account)>, LedgerError> {
        let mut rows: Vec<(String, Account)> = self
            .accounts
            .lock()
            .map_err(|_| LedgerError::Poisoned)?
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(rows)
    }

    /// Serializes the current state as a snapshot document.
    pub fn snapshot_json(&self) -> Result<String, LedgerError> {
        let accounts = self.accounts.lock().map_err(|_| LedgerError::Poisoned)?;
        Ok(render_snapshot(&accounts))
    }

    /// Writes the snapshot file. Writers serialize on `persist_lock`
    /// and each re-renders the *current* state under a brief accounts
    /// lock, so whichever writer runs last writes the newest state —
    /// the file is monotone even under concurrent mutations.
    fn persist(&self) -> Result<(), LedgerError> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let _writer = self
            .persist_lock
            .lock()
            .map_err(|_| LedgerError::Poisoned)?;
        let accounts = self.accounts.lock().map_err(|_| LedgerError::Poisoned)?;
        let text = render_snapshot(&accounts);
        drop(accounts);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, text)
            .and_then(|()| std::fs::rename(&tmp, path))
            .map_err(|e| LedgerError::Snapshot(format!("write {path:?}: {e}")))
    }
}

fn render_snapshot(accounts: &HashMap<String, Account>) -> String {
    let mut rows: Vec<(&String, &Account)> = accounts.iter().collect();
    rows.sort_by(|a, b| a.0.cmp(b.0));
    let datasets = rows
        .into_iter()
        .map(|(name, a)| {
            JsonValue::object(vec![
                ("name", name.as_str().into()),
                ("budget", a.budget.into()),
                ("spent", a.spent.into()),
            ])
        })
        .collect();
    let mut out = JsonValue::object(vec![
        ("schema", SCHEMA.into()),
        ("datasets", JsonValue::Array(datasets)),
    ])
    .to_pretty();
    out.push('\n');
    out
}

fn parse_snapshot(text: &str) -> Result<HashMap<String, Account>, LedgerError> {
    let parse = || -> Result<HashMap<String, Account>, String> {
        let doc = JsonValue::parse(text)?;
        let obj = doc.as_object("snapshot")?;
        let schema = obj.get_str("schema")?;
        if schema != SCHEMA {
            return Err(format!("unknown schema `{schema}`, expected `{SCHEMA}`"));
        }
        let mut accounts = HashMap::new();
        for row in obj.get_array("datasets")? {
            let row = row.as_object("dataset row")?;
            accounts.insert(
                row.get_str("name")?,
                Account {
                    budget: row.get_f64("budget")?,
                    spent: row.get_f64("spent")?,
                },
            );
        }
        Ok(accounts)
    };
    parse().map_err(LedgerError::Snapshot)
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "updp-ledger-test-{}-{tag}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn reserve_grants_then_refuses() {
        let ledger = Ledger::in_memory();
        ledger.register("d", 1.0).unwrap();
        assert!(ledger.reserve("d", 0.7).unwrap().is_ok());
        let refusal = ledger.reserve("d", 0.7).unwrap().unwrap_err();
        assert_eq!(refusal.requested, 0.7);
        assert!((refusal.available - 0.3).abs() < 1e-12);
        // The remaining 0.3 is still spendable.
        assert!(ledger.reserve("d", 0.3).unwrap().is_ok());
    }

    #[test]
    fn rejects_bad_parameters_and_unknown_datasets() {
        let ledger = Ledger::in_memory();
        assert!(matches!(
            ledger.register("d", 0.0),
            Err(LedgerError::BadParameter(_))
        ));
        ledger.register("d", 1.0).unwrap();
        assert!(matches!(
            ledger.reserve("d", f64::NAN),
            Err(LedgerError::BadParameter(_))
        ));
        assert!(matches!(
            ledger.reserve("ghost", 0.1),
            Err(LedgerError::UnknownDataset(_))
        ));
    }

    #[test]
    fn snapshot_survives_restart_and_blocks_replay() {
        let path = temp_path("replay");
        {
            let ledger = Ledger::open(&path).unwrap();
            ledger.register("salaries", 0.5).unwrap();
            assert!(ledger.reserve("salaries", 0.5).unwrap().is_ok());
        }
        // "Restart": a fresh ledger over the same snapshot.
        let ledger = Ledger::open(&path).unwrap();
        // Re-registering the same name must NOT reset `spent` — and a
        // bigger requested budget must NOT mint fresh ε either.
        let account = ledger.register("salaries", 1e6).unwrap();
        assert_eq!(account.spent, 0.5);
        assert_eq!(account.budget, 0.5, "re-register raised the budget");
        assert!(ledger.reserve("salaries", 0.1).unwrap().is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn register_pins_the_budget_at_first_registration() {
        let ledger = Ledger::in_memory();
        ledger.register("d", 1.0).unwrap();
        ledger.reserve("d", 1.0).unwrap().unwrap();
        // Drop-and-re-register (the registry drops data, never the
        // ledger entry) cannot buy a second life.
        let account = ledger.register("d", 50.0).unwrap();
        assert_eq!(account.budget, 1.0);
        assert!(ledger.reserve("d", 0.1).unwrap().is_err());
    }

    #[test]
    fn reserve_many_matches_item_by_item_semantics() {
        let one = Ledger::in_memory();
        one.register("d", 1.0).unwrap();
        let many = Ledger::in_memory();
        many.register("d", 1.0).unwrap();
        let amounts = [0.4, 0.4, 0.4, 0.2];
        let batched = many.reserve_many("d", &amounts).unwrap();
        for (&eps, from_batch) in amounts.iter().zip(batched) {
            let single = one.reserve("d", eps).unwrap();
            assert_eq!(single.is_ok(), from_batch.is_ok(), "eps {eps}");
        }
        assert_eq!(
            one.account("d").unwrap().spent,
            many.account("d").unwrap().spent
        );
    }

    #[test]
    fn snapshot_round_trips_through_the_shared_codec() {
        let ledger = Ledger::in_memory();
        ledger.register("b", 2.0).unwrap();
        ledger.register("a", 1.0).unwrap();
        ledger.reserve("a", 0.25).unwrap().unwrap();
        let accounts = parse_snapshot(&ledger.snapshot_json().unwrap()).unwrap();
        assert_eq!(accounts.len(), 2);
        assert_eq!(
            accounts["a"],
            Account {
                budget: 1.0,
                spent: 0.25
            }
        );
    }

    #[test]
    fn poisoned_accounts_lock_is_an_error_not_a_cascade() {
        let ledger = Ledger::in_memory();
        ledger.register("d", 1.0).unwrap();
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = ledger.accounts.lock().unwrap();
            panic!("poison");
        }));
        assert!(poison.is_err());
        assert_eq!(ledger.account("d").unwrap_err(), LedgerError::Poisoned);
        assert_eq!(ledger.reserve("d", 0.1).unwrap_err(), LedgerError::Poisoned);
        assert_eq!(
            ledger.register("e", 1.0).unwrap_err(),
            LedgerError::Poisoned
        );
        assert_eq!(ledger.list().unwrap_err(), LedgerError::Poisoned);
    }

    #[test]
    fn corrupt_snapshot_is_an_error_not_a_reset() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(matches!(Ledger::open(&path), Err(LedgerError::Snapshot(_))));
        let _ = std::fs::remove_file(&path);
    }

    /// The ISSUE's accountant hammer: 8 threads × 25 requests of
    /// ε = 0.01 against a budget of 1.0 (total demand 2.0). The mutex
    /// makes reservation atomic, so (a) the granted sum never exceeds
    /// the budget (+ float tolerance), and (b) the number of grants is
    /// *deterministic* — exactly 100 — because equal-ε arithmetic
    /// admits exactly one cut-off regardless of thread interleaving.
    #[test]
    fn concurrent_hammer_never_overspends_and_refusal_count_is_deterministic() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 25;
        const EPS: f64 = 0.01;
        let ledger = Ledger::in_memory();
        ledger.register("hot", 1.0).unwrap();
        let grants: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    scope.spawn(|| {
                        (0..PER_THREAD)
                            .filter(|_| ledger.reserve("hot", EPS).unwrap().is_ok())
                            .count()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let account = ledger.account("hot").unwrap();
        assert!(
            account.spent <= account.budget + budget_tolerance(account.budget),
            "overspent: {} of {}",
            account.spent,
            account.budget
        );
        // Every one of the 200 attempts was either granted or refused;
        // grants are pinned exactly, hence so are refusals.
        assert_eq!(grants, 100, "refusals = {}", THREADS * PER_THREAD - grants);
        assert!((account.spent - 1.0).abs() < 1e-9);
    }
}
