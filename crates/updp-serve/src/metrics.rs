//! The server's metric surface: every family the serving stack
//! records, the per-shard trace rings, and the endpoint-label
//! normalizer — all built on [`updp_obs`] primitives.
//!
//! This module is the observe-only boundary of DESIGN.md §11: the
//! reactor, HTTP layer, engine, and ledger *write* here, and only
//! `GET /v1/metrics` / `GET /v1/trace` *read* — nothing recorded here
//! is ever consulted by request handling. All clock reads stay in the
//! transport code (`reactor.rs`, `engine.rs`); this module and
//! `updp-obs` only aggregate the microsecond values they are handed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use updp_core::json::JsonValue;
use updp_obs::{
    Counter, Family, FloatCounter, Gauge, Histogram, Registry as ObsRegistry, ScrapedFamily,
    TraceEvent, TraceRing,
};

/// Capacity of each per-shard trace ring.
const TRACE_RING_CAP: usize = 256;

/// All metric families the serving stack records, plus the per-shard
/// flight-recorder rings. Owned by [`crate::server::AppState`];
/// handles are resolved once per shard/endpoint/estimator and then
/// recorded through lock-free atomics.
pub(crate) struct ServeMetrics {
    enabled: bool,
    registry: ObsRegistry,
    // Reactor families, labelled by shard.
    accepted: Arc<Family<Counter>>,
    rejected_cap: Arc<Family<Counter>>,
    overloaded: Arc<Family<Counter>>,
    panics: Arc<Family<Counter>>,
    bytes_read: Arc<Family<Counter>>,
    bytes_written: Arc<Family<Counter>>,
    wakeups: Arc<Family<Counter>>,
    queue_high_water: Arc<Family<Gauge>>,
    write_seconds: Arc<Family<Histogram>>,
    // HTTP families, labelled by endpoint.
    requests: Arc<Family<Counter>>,
    responses: Arc<Family<Counter>>,
    parse_seconds: Arc<Family<Histogram>>,
    handle_seconds: Arc<Family<Histogram>>,
    // Engine families, labelled by estimator.
    engine_queries: Arc<Family<Counter>>,
    engine_seconds: Arc<Family<Histogram>>,
    engine_inflation: Arc<Family<FloatCounter>>,
    // Flight recorder.
    next_id: AtomicU64,
    rings: Vec<TraceRing>,
}

impl ServeMetrics {
    /// Builds the full family set for `workers` reactor shards. With
    /// `enabled == false` every record call is a no-op (families still
    /// exist, so `/v1/metrics` renders the same shape either way).
    pub(crate) fn new(workers: usize, enabled: bool) -> ServeMetrics {
        let mut registry = ObsRegistry::new();
        let accepted = registry.counters(
            "updp_reactor_connections_accepted_total",
            "Connections accepted, by reactor shard.",
            &["shard"],
        );
        let rejected_cap = registry.counters(
            "updp_reactor_connections_rejected_total",
            "Connections answered a pre-queued 503 at the connection cap, by shard.",
            &["shard"],
        );
        let overloaded = registry.counters(
            "updp_reactor_overloaded_total",
            "Requests answered 503 because the write queue was full, by shard.",
            &["shard"],
        );
        let panics = registry.counters(
            "updp_reactor_handler_panics_total",
            "Handler panics caught by the reactor, by shard.",
            &["shard"],
        );
        let bytes_read = registry.counters(
            "updp_reactor_bytes_read_total",
            "Bytes read from peers, by shard.",
            &["shard"],
        );
        let bytes_written = registry.counters(
            "updp_reactor_bytes_written_total",
            "Bytes written to peers, by shard.",
            &["shard"],
        );
        let wakeups = registry.counters(
            "updp_reactor_wakeups_total",
            "epoll_wait returns, by shard.",
            &["shard"],
        );
        let queue_high_water = registry.gauges(
            "updp_reactor_write_queue_high_water_bytes",
            "Largest write-queue depth observed, by shard.",
            &["shard"],
        );
        let write_seconds = registry.histograms(
            "updp_http_write_seconds",
            "Time from response enqueue to the write queue draining, by shard.",
            &["shard"],
        );
        let requests = registry.counters(
            "updp_http_requests_total",
            "Requests dispatched, by endpoint.",
            &["endpoint"],
        );
        let responses = registry.counters(
            "updp_http_responses_total",
            "Responses by endpoint and status class.",
            &["endpoint", "class"],
        );
        let parse_seconds = registry.histograms(
            "updp_http_parse_seconds",
            "Time from first request byte to a complete parse, by endpoint.",
            &["endpoint"],
        );
        let handle_seconds = registry.histograms(
            "updp_http_handle_seconds",
            "Handler (route) wall time, by endpoint.",
            &["endpoint"],
        );
        let engine_queries = registry.counters(
            "updp_engine_queries_total",
            "Estimator executions, by estimator name.",
            &["estimator"],
        );
        let engine_seconds = registry.histograms(
            "updp_engine_query_seconds",
            "Estimator execution wall time, by estimator name.",
            &["estimator"],
        );
        let engine_inflation = registry.float_counters(
            "updp_engine_epsilon_inflation_total",
            "Total snapping epsilon inflation charged, by estimator name.",
            &["estimator"],
        );
        ServeMetrics {
            enabled,
            registry,
            accepted,
            rejected_cap,
            overloaded,
            panics,
            bytes_read,
            bytes_written,
            wakeups,
            queue_high_water,
            write_seconds,
            requests,
            responses,
            parse_seconds,
            handle_seconds,
            engine_queries,
            engine_seconds,
            engine_inflation,
            next_id: AtomicU64::new(0),
            rings: (0..workers.max(1))
                .map(|_| TraceRing::new(TRACE_RING_CAP))
                .collect(),
        }
    }

    /// True when instrumentation is recording.
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Resolves the per-shard handle bundle (called once per worker).
    pub(crate) fn shard(&self, index: usize) -> ShardMetrics {
        let label = index.to_string();
        let l = [label.as_str()];
        ShardMetrics {
            index,
            enabled: self.enabled,
            accepted: self.accepted.with_labels(&l),
            rejected_cap: self.rejected_cap.with_labels(&l),
            overloaded: self.overloaded.with_labels(&l),
            panics: self.panics.with_labels(&l),
            bytes_read: self.bytes_read.with_labels(&l),
            bytes_written: self.bytes_written.with_labels(&l),
            wakeups: self.wakeups.with_labels(&l),
            queue_high_water: self.queue_high_water.with_labels(&l),
            write_seconds: self.write_seconds.with_labels(&l),
        }
    }

    /// Records one dispatched request's endpoint counters and phase
    /// latencies.
    pub(crate) fn record_request(
        &self,
        endpoint: &str,
        status: u16,
        parse_micros: u64,
        handle_micros: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.requests.with_labels(&[endpoint]).inc();
        self.responses
            .with_labels(&[endpoint, status_class(status)])
            .inc();
        self.parse_seconds
            .with_labels(&[endpoint])
            .observe_micros(parse_micros);
        self.handle_seconds
            .with_labels(&[endpoint])
            .observe_micros(handle_micros);
    }

    /// Records one estimator execution.
    pub(crate) fn record_engine_query(&self, estimator: &str, micros: u64) {
        if !self.enabled {
            return;
        }
        self.engine_queries.with_labels(&[estimator]).inc();
        self.engine_seconds
            .with_labels(&[estimator])
            .observe_micros(micros);
    }

    /// Records snapping ε inflation charged for a released query.
    pub(crate) fn record_engine_inflation(&self, estimator: &str, inflation: f64) {
        if !self.enabled {
            return;
        }
        self.engine_inflation
            .with_labels(&[estimator])
            .add(inflation);
    }

    /// The next process-wide request id (trace correlation only).
    pub(crate) fn next_request_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Pushes a trace event into its shard's ring.
    pub(crate) fn trace_event(&self, shard: usize, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let Some(ring) = self.rings.get(shard) {
            ring.push(event);
        }
    }

    /// All buffered trace events across shards, ordered by request id.
    pub(crate) fn trace_snapshot(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> =
            self.rings.iter().flat_map(|ring| ring.snapshot()).collect();
        events.sort_by_key(|e| e.id);
        events
    }

    /// Prometheus text exposition of every family plus the
    /// scrape-time `extra` rows.
    pub(crate) fn render_prometheus(&self, extra: &[ScrapedFamily]) -> String {
        self.registry.render_prometheus(extra)
    }

    /// The same state as JSON.
    pub(crate) fn render_json(&self, extra: &[ScrapedFamily]) -> JsonValue {
        self.registry.render_json(extra)
    }
}

/// Per-shard handles, resolved once in `Worker::new` so the hot path
/// never touches the family maps.
pub(crate) struct ShardMetrics {
    /// The shard index (trace events carry it).
    pub(crate) index: usize,
    enabled: bool,
    accepted: Arc<Counter>,
    rejected_cap: Arc<Counter>,
    overloaded: Arc<Counter>,
    panics: Arc<Counter>,
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
    wakeups: Arc<Counter>,
    queue_high_water: Arc<Gauge>,
    write_seconds: Arc<Histogram>,
}

impl ShardMetrics {
    /// True when recording is live. The reactor checks this before
    /// taking clock readings so a metrics-off server skips even the
    /// `Instant::now()` calls.
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn accepted(&self) {
        if self.enabled {
            self.accepted.inc();
        }
    }

    pub(crate) fn rejected_at_cap(&self) {
        if self.enabled {
            self.rejected_cap.inc();
        }
    }

    pub(crate) fn overloaded(&self) {
        if self.enabled {
            self.overloaded.inc();
        }
    }

    pub(crate) fn panic_caught(&self) {
        if self.enabled {
            self.panics.inc();
        }
    }

    pub(crate) fn bytes_read(&self, n: u64) {
        if self.enabled {
            self.bytes_read.add(n);
        }
    }

    pub(crate) fn bytes_written(&self, n: u64) {
        if self.enabled {
            self.bytes_written.add(n);
        }
    }

    pub(crate) fn wakeup(&self) {
        if self.enabled {
            self.wakeups.inc();
        }
    }

    pub(crate) fn queue_high_water(&self, bytes: usize) {
        if self.enabled {
            self.queue_high_water.observe_max(bytes as i64);
        }
    }

    pub(crate) fn write_flush_micros(&self, micros: u64) {
        if self.enabled {
            self.write_seconds.observe_micros(micros);
        }
    }
}

/// The Prometheus status-class label for a status code.
fn status_class(status: u16) -> &'static str {
    match status {
        200..=299 => "2xx",
        300..=399 => "3xx",
        400..=499 => "4xx",
        _ => "5xx",
    }
}

/// Normalizes a request path to a bounded endpoint label: known
/// routes keep their path (query string stripped), everything else —
/// including 404 probes — collapses to `"other"` so hostile paths
/// cannot inflate label cardinality.
pub(crate) fn endpoint_label(path: &str) -> &'static str {
    let route = path.split('?').next().unwrap_or(path);
    match route {
        "/v1/healthz" => "/v1/healthz",
        "/v1/datasets" => "/v1/datasets",
        "/v1/estimators" => "/v1/estimators",
        "/v1/register" => "/v1/register",
        "/v1/append" => "/v1/append",
        "/v1/flush" => "/v1/flush",
        "/v1/drop" => "/v1/drop",
        "/v1/query" => "/v1/query",
        "/v1/shutdown" => "/v1/shutdown",
        "/v1/metrics" => "/v1/metrics",
        "/v1/trace" => "/v1/trace",
        _ => "other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_labels_are_bounded() {
        assert_eq!(endpoint_label("/v1/query"), "/v1/query");
        assert_eq!(endpoint_label("/v1/metrics?format=json"), "/v1/metrics");
        assert_eq!(endpoint_label("/v1/../../etc/passwd"), "other");
        assert_eq!(endpoint_label("/v1/nope"), "other");
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let metrics = ServeMetrics::new(1, false);
        metrics.record_request("/v1/query", 200, 1, 2);
        metrics.record_engine_query("mean", 5);
        metrics.trace_event(
            0,
            TraceEvent {
                id: 0,
                shard: 0,
                method: "GET".into(),
                path: "/".into(),
                dataset: None,
                status: 200,
                parse_micros: 0,
                handle_micros: 0,
                bytes_in: 0,
                bytes_out: 0,
                unix_ms: 0,
            },
        );
        let text = metrics.render_prometheus(&[]);
        assert!(text.contains("# TYPE updp_http_requests_total counter"));
        assert!(!text.contains("updp_http_requests_total{"));
        assert!(metrics.trace_snapshot().is_empty());
    }

    #[test]
    fn enabled_metrics_render_families_with_children() {
        let metrics = ServeMetrics::new(2, true);
        let shard = metrics.shard(1);
        shard.accepted();
        shard.bytes_read(100);
        metrics.record_request("/v1/query", 200, 3, 40);
        metrics.record_request("/v1/query", 403, 1, 9);
        metrics.record_engine_inflation("mean", 0.001);
        let text = metrics.render_prometheus(&[]);
        assert!(text.contains("updp_reactor_connections_accepted_total{shard=\"1\"} 1"));
        assert!(text.contains("updp_http_requests_total{endpoint=\"/v1/query\"} 2"));
        assert!(text.contains("updp_http_responses_total{endpoint=\"/v1/query\",class=\"2xx\"} 1"));
        assert!(text.contains("updp_http_responses_total{endpoint=\"/v1/query\",class=\"4xx\"} 1"));
        assert!(text.contains("updp_engine_epsilon_inflation_total{estimator=\"mean\"} 0.001"));
    }
}
