//! A minimal first-party HTTP/1.1 codec over `std::net` streams.
//!
//! Exactly the subset the serving wire format needs: request
//! line + headers + `Content-Length` body, keep-alive by default
//! (HTTP/1.1 semantics, honoring `Connection: close`), JSON bodies
//! only. No chunked transfer, no TLS, no multipart — deployments that
//! need those should front the server with a reverse proxy; the goal
//! here is a dependency-free serving path (the build environment has
//! no crates.io access).

use std::io::{BufRead, Write};

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// How many consecutive read timeouts a *mid-request* read survives
/// before the connection is dropped. The server's 500 ms socket
/// timeout exists so idle connections can poll the shutdown flag;
/// once a request has started arriving, stalls are tolerated up to
/// this cap (~2 minutes) so slow uploads are not cut off, while a
/// wedged peer still cannot pin the connection forever.
pub const MAX_READ_STALLS: usize = 240;
/// Upper bound on a request body (64 MiB ≈ an 8M-record f64 dataset
/// in JSON — registrations beyond that should arrive in appends).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Request path (no query-string splitting; paths are the API).
    pub path: String,
    /// Raw body bytes (UTF-8 JSON for every endpoint).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

/// Protocol errors while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// The peer sent something that is not valid HTTP/1.1 (or exceeds
    /// the size limits).
    Malformed(String),
    /// A read timeout fired while the connection was idle between
    /// requests (no byte of the next request seen yet). Only possible
    /// when the caller set a socket read timeout; the server's accept
    /// loop uses it to poll its shutdown flag so an idle keep-alive
    /// connection can never pin the process alive.
    IdleTimeout,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Malformed(reason) => write!(f, "malformed request: {reason}"),
            HttpError::IdleTimeout => write!(f, "idle read timeout"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one line terminated by `\n`, enforcing the head budget, and
/// strips the trailing `\r\n`/`\n`. `Ok(None)` signals clean EOF
/// before any byte (the peer closed an idle keep-alive connection).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn read_line(
    stream: &mut impl BufRead,
    budget: &mut usize,
    first: bool,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    let mut stalls = 0usize;
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => {
                if first && line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("unexpected EOF in head".into()));
            }
            Ok(_) => {
                stalls = 0;
                *budget = budget
                    .checked_sub(1)
                    .ok_or_else(|| HttpError::Malformed("head too large".into()))?;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 head".into()));
                }
                line.push(byte[0]);
            }
            Err(e) if is_timeout(&e) => {
                // Before the first byte of a request this is the idle
                // shutdown-poll signal; mid-request it is a stall,
                // tolerated up to MAX_READ_STALLS.
                if first && line.is_empty() {
                    return Err(HttpError::IdleTimeout);
                }
                stalls += 1;
                if stalls > MAX_READ_STALLS {
                    return Err(HttpError::Io(e));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Reads exactly `len` body bytes, tolerating mid-transfer timeouts
/// up to [`MAX_READ_STALLS`] (std's `read_exact` would fail on the
/// first timeout and leave the buffer state unspecified).
fn read_body(stream: &mut impl BufRead, len: usize) -> Result<Vec<u8>, HttpError> {
    let mut body = vec![0u8; len];
    let mut filled = 0usize;
    let mut stalls = 0usize;
    while filled < len {
        match stream.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::Malformed("unexpected EOF in body".into())),
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MAX_READ_STALLS {
                    return Err(HttpError::Io(e));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    Ok(body)
}

/// Parses the request line into `(METHOD, path)`, validating the
/// HTTP/1.x version tag. Shared by the blocking reader and the
/// incremental [`RequestParser`].
fn parse_request_line(request_line: &str) -> Result<(String, String), HttpError> {
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_uppercase(), p.to_string(), v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version `{version}`")));
    }
    Ok((method, path))
}

/// Applies one header line to the framing state. Shared by the
/// blocking reader and the incremental [`RequestParser`] so both
/// enforce the same smuggling refusals.
fn apply_header(
    line: &str,
    content_length: &mut Option<usize>,
    keep_alive: &mut bool,
) -> Result<(), HttpError> {
    let Some((name, value)) = line.split_once(':') else {
        return Err(HttpError::Malformed(format!("bad header `{line}`")));
    };
    let value = value.trim();
    match name.to_ascii_lowercase().as_str() {
        // Repeated Content-Length headers are the classic
        // request-smuggling vector behind a proxy that picks a
        // different occurrence than we do (same class as the
        // Transfer-Encoding refusal below). Refuse loudly — even
        // when the repeated values agree, there is no legitimate
        // reason for a client to send two.
        "content-length" => {
            if content_length.is_some() {
                return Err(HttpError::Malformed(
                    "duplicate content-length header".into(),
                ));
            }
            *content_length = Some(
                value
                    .parse()
                    .map_err(|_| HttpError::Malformed(format!("bad content-length `{value}`")))?,
            );
        }
        "connection" => *keep_alive = !value.eq_ignore_ascii_case("close"),
        // Chunked framing is not implemented; silently ignoring it
        // would desync the keep-alive stream (and differing
        // framing interpretations behind a proxy are a smuggling
        // vector), so refuse loudly.
        "transfer-encoding" => {
            return Err(HttpError::Malformed(
                "transfer-encoding is not supported; send Content-Length".into(),
            ))
        }
        _ => {}
    }
    Ok(())
}

/// Reads one request. `Ok(None)` means the peer closed the idle
/// connection cleanly (normal end of a keep-alive session).
pub fn read_request(stream: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let Some(request_line) = read_line(stream, &mut budget, true)? else {
        return Ok(None);
    };
    let (method, path) = parse_request_line(&request_line)?;
    let mut content_length: Option<usize> = None;
    let mut keep_alive = true; // HTTP/1.1 default
    loop {
        let line = read_line(stream, &mut budget, false)?
            .ok_or_else(|| HttpError::Malformed("EOF in headers".into()))?;
        if line.is_empty() {
            break;
        }
        apply_header(&line, &mut content_length, &mut keep_alive)?;
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::Malformed(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let body = read_body(stream, content_length)?;
    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// A parsed-but-bodiless head: the framing state the incremental
/// parser carries while body bytes stream in.
#[derive(Debug)]
struct PendingBody {
    method: String,
    path: String,
    keep_alive: bool,
    content_length: usize,
}

/// Incremental request parser for non-blocking transports: feed it
/// whatever bytes the socket yields — split at **any** byte boundary,
/// including mid-request-line, mid-header, or mid-body — and it
/// returns each request exactly once, as soon as its last byte
/// arrives. The framing rules (head/body caps, duplicate
/// Content-Length and Transfer-Encoding refusals, keep-alive
/// semantics) are shared with the blocking [`read_request`], so the
/// reactor and the legacy codec cannot drift apart.
///
/// Errors are sticky in practice: the caller must stop feeding a
/// parser that returned `Err` (the stream is desynchronized; the
/// connection should answer 400 and close).
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    pending: Option<PendingBody>,
}

impl RequestParser {
    /// A fresh parser (one per connection).
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// True when no partial request is buffered — EOF here is a clean
    /// keep-alive close rather than a truncated request.
    pub fn is_idle(&self) -> bool {
        self.buf.is_empty() && self.pending.is_none()
    }

    /// Consumes `chunk` and returns every request it completed (zero
    /// or more — pipelined peers can complete several in one read).
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Vec<Request>, HttpError> {
        self.buf.extend_from_slice(chunk);
        let mut out = Vec::new();
        loop {
            if let Some(pending) = &self.pending {
                if self.buf.len() < pending.content_length {
                    break;
                }
                let pending = self.pending.take().expect("checked above");
                let body: Vec<u8> = self.buf.drain(..pending.content_length).collect();
                out.push(Request {
                    method: pending.method,
                    path: pending.path,
                    body,
                    keep_alive: pending.keep_alive,
                });
                continue;
            }
            let Some(head_len) = find_head_end(&self.buf) else {
                if self.buf.len() > MAX_HEAD_BYTES {
                    return Err(HttpError::Malformed("head too large".into()));
                }
                break;
            };
            if head_len > MAX_HEAD_BYTES {
                return Err(HttpError::Malformed("head too large".into()));
            }
            let pending = parse_head_block(&self.buf[..head_len])?;
            if pending.content_length > MAX_BODY_BYTES {
                return Err(HttpError::Malformed(format!(
                    "body of {} bytes exceeds the {MAX_BODY_BYTES}-byte limit",
                    pending.content_length
                )));
            }
            self.buf.drain(..head_len);
            self.pending = Some(pending);
        }
        Ok(out)
    }
}

/// Byte length of the head (request line + headers + blank line) if
/// the blank line has arrived, tolerating both `\r\n` and bare `\n`
/// terminators like the blocking reader.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut pos = 0;
    while let Some(nl) = buf[pos..].iter().position(|&b| b == b'\n') {
        let end = pos + nl + 1;
        let mut line = &buf[pos..pos + nl];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        if line.is_empty() {
            return Some(end);
        }
        pos = end;
    }
    None
}

/// Parses a complete head block (including its terminating blank
/// line) into the framing state.
fn parse_head_block(head: &[u8]) -> Result<PendingBody, HttpError> {
    let text =
        std::str::from_utf8(head).map_err(|_| HttpError::Malformed("non-UTF-8 head".into()))?;
    let mut lines = text
        .split('\n')
        .map(|line| line.strip_suffix('\r').unwrap_or(line));
    let (method, path) = parse_request_line(lines.next().unwrap_or(""))?;
    let mut content_length: Option<usize> = None;
    let mut keep_alive = true; // HTTP/1.1 default
    for line in lines {
        if line.is_empty() {
            break;
        }
        apply_header(line, &mut content_length, &mut keep_alive)?;
    }
    Ok(PendingBody {
        method,
        path,
        keep_alive,
        content_length: content_length.unwrap_or(0),
    })
}

/// Reason phrases for the statuses the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Renders one JSON response into bytes (the reactor enqueues these
/// on its per-connection write queues; the blocking path writes them
/// straight to the socket).
pub fn encode_response(status: u16, body: &str, keep_alive: bool) -> Vec<u8> {
    encode_response_with_type(status, body, keep_alive, "application/json")
}

/// Like [`encode_response`] but with an explicit `Content-Type`
/// (`/v1/metrics` serves Prometheus text exposition, everything else
/// is JSON).
pub fn encode_response_with_type(
    status: u16,
    body: &str,
    keep_alive: bool,
    content_type: &str,
) -> Vec<u8> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut wire = Vec::with_capacity(head.len() + body.len());
    wire.extend_from_slice(head.as_bytes());
    wire.extend_from_slice(body.as_bytes());
    wire
}

/// Writes one JSON response.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    stream.write_all(&encode_response(status, body, keep_alive))?;
    stream.flush()
}

/// Writes one JSON request (client side).
pub fn write_request(
    stream: &mut impl Write,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: updp-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads one response (client side): `(status, body)`.
///
/// Defensive against a misbehaving server: the status line is parsed
/// explicitly (a missing or non-numeric status code is a distinct
/// `Malformed` error, never a silent default), duplicate
/// `Content-Length` headers are refused, and the declared body length
/// is capped at [`MAX_BODY_BYTES`] **before** any allocation — so a
/// rogue `Content-Length: 1e18` cannot make `serve-client`/`loadgen`
/// allocate unboundedly.
pub fn read_response(stream: &mut impl BufRead) -> Result<(u16, String), HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let status_line = read_line(stream, &mut budget, false)?
        .ok_or_else(|| HttpError::Malformed("EOF before status line".into()))?;
    let mut parts = status_line.split_whitespace();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty status line".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "bad version `{version}` in status line `{status_line}`"
        )));
    }
    let code = parts.next().ok_or_else(|| {
        HttpError::Malformed(format!("status line `{status_line}` has no status code"))
    })?;
    let status: u16 = code.parse().map_err(|_| {
        HttpError::Malformed(format!(
            "non-numeric status code `{code}` in status line `{status_line}`"
        ))
    })?;
    let mut content_length: Option<usize> = None;
    loop {
        let line = read_line(stream, &mut budget, false)?
            .ok_or_else(|| HttpError::Malformed("EOF in headers".into()))?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                if content_length.is_some() {
                    return Err(HttpError::Malformed(
                        "duplicate content-length header".into(),
                    ));
                }
                content_length = Some(value.trim().parse().map_err(|_| {
                    HttpError::Malformed(format!("bad content-length `{}`", value.trim()))
                })?);
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::Malformed(format!(
            "response body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let body = read_body(stream, content_length)?;
    String::from_utf8(body)
        .map(|text| (status, text))
        .map_err(|_| HttpError::Malformed("non-UTF-8 body".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_round_trips_through_the_codec() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/v1/query", "{\"a\":1}").unwrap();
        let req = read_request(&mut BufReader::new(wire.as_slice()))
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.body, b"{\"a\":1}");
        assert!(req.keep_alive);
    }

    #[test]
    fn response_round_trips_through_the_codec() {
        let mut wire = Vec::new();
        write_response(&mut wire, 403, "{\"error\":true}", false).unwrap();
        let (status, body) = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(status, 403);
        assert_eq!(body, "{\"error\":true}");
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 403 Forbidden\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn connection_close_clears_keep_alive() {
        let wire = b"GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = read_request(&mut BufReader::new(wire.as_slice()))
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn idle_eof_is_a_clean_none() {
        let empty: &[u8] = b"";
        assert!(read_request(&mut BufReader::new(empty)).unwrap().is_none());
    }

    #[test]
    fn malformed_heads_are_rejected() {
        for bad in [
            "NOT-HTTP\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST /x HTTP/1.1\r\nbadheader\r\n\r\n",
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
        ] {
            assert!(
                read_request(&mut BufReader::new(bad.as_bytes())).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn duplicate_content_length_is_refused() {
        // Differing values: whichever occurrence a proxy honored, we
        // must not silently honor the other — a smuggling vector.
        let differing = "POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\nabcde";
        // Even identical repeats are refused: no legitimate client
        // sends two.
        let identical = "POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc";
        for wire in [differing, identical] {
            match read_request(&mut BufReader::new(wire.as_bytes())) {
                Err(HttpError::Malformed(reason)) => {
                    assert!(reason.contains("duplicate content-length"), "{reason}")
                }
                other => panic!("accepted duplicate content-length: {other:?}"),
            }
        }
        // Case-insensitive: header names match ASCII-case-insensitively.
        let mixed = "POST /x HTTP/1.1\r\nContent-Length: 3\r\ncontent-length: 3\r\n\r\nabc";
        assert!(read_request(&mut BufReader::new(mixed.as_bytes())).is_err());
    }

    #[test]
    fn response_status_line_errors_are_explicit() {
        for (wire, needle) in [
            ("\r\n\r\n", "empty status line"),
            ("ICY 200 OK\r\n\r\n", "bad version"),
            ("HTTP/1.1\r\n\r\n", "no status code"),
            ("HTTP/1.1 abc Bad\r\n\r\n", "non-numeric status code"),
        ] {
            match read_response(&mut BufReader::new(wire.as_bytes())) {
                Err(HttpError::Malformed(reason)) => {
                    assert!(reason.contains(needle), "`{reason}` missing `{needle}`")
                }
                other => panic!("accepted {wire:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_response_bodies_are_refused_before_allocation() {
        // A rogue server declaring an enormous body must not make the
        // client allocate it.
        let wire = format!(
            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match read_response(&mut BufReader::new(wire.as_bytes())) {
            Err(HttpError::Malformed(reason)) => {
                assert!(reason.contains("exceeds"), "{reason}")
            }
            other => panic!("accepted oversized response: {other:?}"),
        }
        // Duplicate response Content-Length is refused too.
        let wire = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok";
        assert!(read_response(&mut BufReader::new(wire.as_bytes())).is_err());
    }

    #[test]
    fn oversized_bodies_are_refused_before_allocation() {
        let wire = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            read_request(&mut BufReader::new(wire.as_bytes())),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn two_requests_on_one_connection() {
        let mut wire = Vec::new();
        write_request(&mut wire, "GET", "/v1/healthz", "").unwrap();
        write_request(&mut wire, "POST", "/v1/shutdown", "{}").unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        assert_eq!(
            read_request(&mut reader).unwrap().unwrap().path,
            "/v1/healthz"
        );
        assert_eq!(
            read_request(&mut reader).unwrap().unwrap().path,
            "/v1/shutdown"
        );
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    /// The slow-loris shape without any wall clock: every possible
    /// short-read split point over a request stream must yield the
    /// exact same requests as one contiguous read. This is the
    /// deterministic stand-in for EAGAIN-at-every-byte on a
    /// non-blocking socket.
    #[test]
    fn incremental_parser_tolerates_splits_at_every_byte_boundary() {
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            "POST",
            "/v1/query",
            "{\"dataset\":\"d\",\"seed\":7}",
        )
        .unwrap();
        write_request(&mut wire, "GET", "/v1/healthz", "").unwrap();
        let mut whole = RequestParser::new();
        let expected = whole.feed(&wire).unwrap();
        assert_eq!(expected.len(), 2);
        assert!(whole.is_idle());

        for split in 0..=wire.len() {
            let mut parser = RequestParser::new();
            let mut got = parser.feed(&wire[..split]).unwrap();
            got.extend(parser.feed(&wire[split..]).unwrap());
            assert_eq!(got, expected, "split at byte {split} changed the parse");
            assert!(parser.is_idle(), "split at byte {split} left residue");
        }
    }

    /// One-byte-at-a-time feeding (the most adversarial split
    /// schedule) still produces each request exactly once, exactly
    /// when its final byte arrives.
    #[test]
    fn incremental_parser_handles_byte_at_a_time_feeding() {
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            "POST",
            "/v1/append",
            "{\"name\":\"d\",\"data\":[1,2]}",
        )
        .unwrap();
        let mut parser = RequestParser::new();
        let mut got = Vec::new();
        for (i, byte) in wire.iter().enumerate() {
            let completed = parser.feed(std::slice::from_ref(byte)).unwrap();
            if !completed.is_empty() {
                assert_eq!(i, wire.len() - 1, "request completed before its last byte");
            }
            got.extend(completed);
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].path, "/v1/append");
        assert_eq!(got[0].body, b"{\"name\":\"d\",\"data\":[1,2]}");
        assert!(parser.is_idle());
    }

    #[test]
    fn incremental_parser_returns_pipelined_requests_in_order() {
        let mut wire = Vec::new();
        for i in 0..5 {
            write_request(&mut wire, "POST", &format!("/v1/q{i}"), "{}").unwrap();
        }
        let mut parser = RequestParser::new();
        let got = parser.feed(&wire).unwrap();
        let paths: Vec<&str> = got.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, ["/v1/q0", "/v1/q1", "/v1/q2", "/v1/q3", "/v1/q4"]);
    }

    /// The incremental parser enforces the same refusals, with the
    /// same error text, as the blocking reader.
    #[test]
    fn incremental_parser_matches_blocking_reader_refusals() {
        for wire in [
            "NOT-HTTP\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\nabcde",
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            let blocking = read_request(&mut BufReader::new(wire.as_bytes()));
            let incremental = RequestParser::new().feed(wire.as_bytes());
            match (blocking, incremental) {
                (Err(HttpError::Malformed(a)), Err(HttpError::Malformed(b))) => {
                    assert_eq!(a, b, "error text diverged for {wire:?}")
                }
                other => panic!("expected matching Malformed errors for {wire:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn incremental_parser_caps_head_and_body_sizes() {
        // A head that never terminates is refused once it exceeds the
        // budget — a slow-loris peer cannot grow the buffer forever.
        let mut parser = RequestParser::new();
        let filler = vec![b'a'; MAX_HEAD_BYTES + 2];
        assert!(matches!(
            parser.feed(&filler),
            Err(HttpError::Malformed(reason)) if reason == "head too large"
        ));
        // An oversized declared body is refused at head-parse time,
        // before any body bytes arrive or allocate.
        let mut parser = RequestParser::new();
        let wire = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parser.feed(wire.as_bytes()),
            Err(HttpError::Malformed(reason)) if reason.contains("exceeds")
        ));
    }

    #[test]
    fn encode_response_matches_write_response() {
        let mut written = Vec::new();
        write_response(&mut written, 503, "{\"code\":\"overloaded\"}", false).unwrap();
        assert_eq!(
            written,
            encode_response(503, "{\"code\":\"overloaded\"}", false)
        );
        let text = String::from_utf8(written).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
    }
}
