//! Thin epoll bindings — the one audited `unsafe` module in the
//! workspace.
//!
//! The build environment has no crates.io access (DESIGN.md §4), so
//! the reactor cannot pull in `libc`/`mio`; instead this module
//! declares the five raw syscall entry points it needs (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `close`, `setsockopt` — all exported by
//! the libc `std` already links) and wraps them in safe RAII types.
//! Every `unsafe` block carries a `// SAFETY:` comment stating the
//! invariant it relies on (updp-lint R4); everything outside this
//! module stays `deny(unsafe_code)`.
//!
//! The wake channel deliberately needs **no** unsafe at all: it is a
//! non-blocking [`std::os::unix::net::UnixStream`] pair whose read end
//! is registered in the epoll set — the first-party stand-in for an
//! eventfd.

// The audited exception to the crate-wide `#![deny(unsafe_code)]`:
// raw-syscall FFI is the entire point of this module.
#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;

/// Readiness: the connection can be read without blocking.
pub const IN: u32 = 0x001; // EPOLLIN
/// Readiness: the connection can be written without blocking.
pub const OUT: u32 = 0x004; // EPOLLOUT
/// The peer shut down its writing half (half-close).
pub const RDHUP: u32 = 0x2000; // EPOLLRDHUP
/// Wake at most one of the epoll instances sharing a registration —
/// tames the accept thundering herd across worker shards (kernel
/// ≥ 4.5; [`Epoll::add`] callers fall back to a plain add on EINVAL).
pub const EXCLUSIVE: u32 = 1 << 28; // EPOLLEXCLUSIVE

const ERR: u32 = 0x008; // EPOLLERR
const HUP: u32 = 0x010; // EPOLLHUP

const EPOLL_CLOEXEC: c_int = 0o2000000; // O_CLOEXEC
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const SOL_SOCKET: c_int = 1;
const SO_SNDBUF: c_int = 7;

/// `struct epoll_event` with the kernel's ABI layout: packed on
/// x86-64 (the kernel declares it `__attribute__((packed))` there so
/// the 32-bit `events` field is followed immediately by `data`);
/// naturally aligned 16 bytes everywhere else.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
}

/// One decoded readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The `token` the fd was registered with.
    pub token: u64,
    /// Readable (or half-closed by the peer — a read will observe it).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup: the connection is dead; tear it down.
    pub failed: bool,
}

/// Reusable buffer for [`Epoll::wait`] results.
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// The events delivered by the last [`Epoll::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf.iter().take(self.len).map(Self::decode)
    }

    /// The `i`-th delivered event, `None` past the delivered count.
    /// Indexed access lets the reactor walk the batch without
    /// allocating (it mutates its slab while iterating, so it cannot
    /// hold [`Events::iter`]'s borrow); the checked form keeps the
    /// event loop panic-free (§10).
    pub fn get(&self, i: usize) -> Option<Event> {
        if i >= self.len {
            return None;
        }
        self.buf.get(i).map(Self::decode)
    }

    fn decode(raw: &EpollEvent) -> Event {
        // Copy the (possibly unaligned, on x86-64) packed fields out
        // by value before testing bits.
        let events = raw.events;
        let data = raw.data;
        Event {
            token: data,
            readable: events & (IN | RDHUP) != 0,
            writable: events & OUT != 0,
            failed: events & (ERR | HUP) != 0,
        }
    }
}

/// An owned epoll instance.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // The returned descriptor (if not -1) is exclusively ours,
        // closed in Drop.
        // SAFETY: epoll_create1 takes no pointers; errno handled below.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        // `self.fd` is a valid epoll descriptor owned by this struct.
        // SAFETY: `event` is a live, correctly-laid-out (repr(C),
        // kernel-matching packing) stack value for the whole call.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` for `events` readiness under `token`.
    pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the registered interest set of `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Removes `fd` from the interest set.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until readiness (or `timeout_ms`; -1 blocks forever),
    /// filling `events`. A signal interruption reports zero events
    /// instead of an error.
    pub fn wait(&self, events: &mut Events, timeout_ms: i32) -> io::Result<usize> {
        events.len = 0;
        // The kernel writes at most `maxevents` entries; only the
        // first `rc` are read back.
        // SAFETY: the out-pointer is valid for `events.buf.len()`
        // EpollEvent slots owned by `events`, which outlives the call.
        let rc = unsafe {
            epoll_wait(
                self.fd,
                events.buf.as_mut_ptr(),
                events.buf.len() as c_int,
                timeout_ms,
            )
        };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        events.len = rc as usize;
        Ok(events.len)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is owned exclusively (never cloned or
        // exposed) — this is the single close of a live fd.
        unsafe { close(self.fd) };
    }
}

/// Clamps the kernel send buffer of a socket (`SO_SNDBUF`). Used to
/// bound per-connection kernel memory at high connection counts and
/// to make the backpressure path testable with deterministic-sized
/// buffers.
pub fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    let value = bytes.min(c_int::MAX as usize) as c_int;
    // SAFETY: optval points at a live c_int for the duration of the
    // call and optlen is exactly its size; the kernel only reads it.
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_SNDBUF,
            (&value as *const c_int).cast(),
            std::mem::size_of::<c_int>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// The reactor's shutdown/wake channel: a non-blocking socketpair
/// standing in for an eventfd, built entirely from safe std.
pub struct WakePipe {
    rx: UnixStream,
    tx: UnixStream,
}

/// The sending half handed to other threads; waking is lock-free and
/// never blocks.
pub struct WakeHandle {
    tx: UnixStream,
}

impl WakePipe {
    /// Creates the pair; both ends non-blocking.
    pub fn new() -> io::Result<WakePipe> {
        let (tx, rx) = UnixStream::pair()?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        Ok(WakePipe { rx, tx })
    }

    /// The fd to register in the epoll set (read interest).
    pub fn raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// A cloned sending half.
    pub fn handle(&self) -> io::Result<WakeHandle> {
        Ok(WakeHandle {
            tx: self.tx.try_clone()?,
        })
    }

    /// Consumes all pending wake bytes (level-triggered registration:
    /// drain or spin).
    pub fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        // Reads on a non-blocking socket: loop until WouldBlock/empty.
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

impl WakeHandle {
    /// Queues a wake byte. A full pipe already guarantees a pending
    /// wake, so every outcome leaves the receiver waking up; errors
    /// are deliberately ignored.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn epoll_reports_readability_on_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(listener.as_raw_fd(), 7, IN).unwrap();

        let mut events = Events::with_capacity(8);
        // Nothing pending yet: a zero-timeout wait returns no events.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"x").unwrap();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        let event = events.iter().next().unwrap();
        assert_eq!(event.token, 7);
        assert!(event.readable);

        epoll.delete(listener.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn wake_pipe_round_trips_and_drains() {
        let pipe = WakePipe::new().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(pipe.raw_fd(), 1, IN).unwrap();
        let mut events = Events::with_capacity(4);
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        let handle = pipe.handle().unwrap();
        handle.wake();
        handle.wake();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        pipe.drain();
        // Drained: level-triggered readiness is gone.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn send_buffer_clamp_applies() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        set_send_buffer(stream.as_raw_fd(), 4096).unwrap();
        // Bogus fd errors instead of succeeding silently.
        assert!(set_send_buffer(-1, 4096).is_err());
    }
}
