//! The sharded in-memory dataset registry with buffered streaming
//! ingestion.
//!
//! Datasets are keyed by a client-chosen *name* which doubles as the
//! stable dataset id: it survives server restarts (the budget
//! [`crate::ledger`] is keyed the same way, which is what makes
//! restart-replay impossible) and is validated to a conservative token
//! alphabet so it can appear verbatim in URLs, file names, and logs.
//!
//! Concurrency layout: names hash to one of [`SHARDS`] shards, each an
//! independent `RwLock<HashMap>`; dataset *contents* are an immutable
//! [`PreparedDataset`] snapshot behind a per-dataset
//! `RwLock<Arc<…>>`. Queries clone the `Arc` and estimate **without
//! holding any lock** — readers never block each other or appends.
//!
//! Writes are buffered (DESIGN.md §8): [`Registry::append`] pushes the
//! rows onto the dataset's *pending delta log* (a plain `Mutex`
//! queries never touch) and publishes a successor snapshot only when
//! the [`FlushPolicy`]'s row or age threshold is hit — or when
//! [`Registry::flush`] is called explicitly. Publication is
//! copy-on-write: it derives a new snapshot (warm artifact caches
//! merge-maintained in `O(n + k)`, version + 1) and swaps the `Arc`,
//! so the sorted/discretized artifacts cached by `PreparedDataset` can
//! never describe stale rows, while in-flight queries keep their
//! consistent old snapshot. A burst of N small appends therefore costs
//! **one** snapshot, not N. [`FlushPolicy::immediate`] (every append
//! publishes, pending always empty) preserves the historical
//! semantics and is the library default.
//!
//! Lock poisoning is an error, not a cascade: every `lock()`/`read()`/
//! `write()` maps a poisoned lock to [`RegistryError::Poisoned`]
//! (the server surfaces it as a 500 `internal` wire error), so one
//! panicked writer cannot take every worker thread down with it.
//!
//! Data is stored column-major (`dim` columns of equal length): scalar
//! datasets are one column, and the multivariate mean estimator
//! consumes per-coordinate columns directly without re-slicing rows.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};
use updp_statistical::PreparedDataset;

/// Number of registry shards. A fixed small power of two: enough to
/// decorrelate unrelated datasets' lock traffic, cheap to scan for
/// listings.
pub const SHARDS: usize = 16;

/// Maximum dataset-name length (the name is the wire-visible id).
pub const MAX_NAME_LEN: usize = 64;

/// When a buffered append publishes the pending delta log
/// (DESIGN.md §8). Thresholds are checked at write time: a snapshot is
/// published as soon as the pending log reaches `max_rows` rows, or
/// when a write arrives and the oldest buffered row is older than
/// `max_age`. Between writes, staleness is bounded by an explicit
/// [`Registry::flush`] (the server exposes it as `POST /v1/flush`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Publish once this many rows are pending. `1` publishes every
    /// append immediately (the historical behaviour); `usize::MAX`
    /// defers entirely to `max_age` and explicit flushes.
    pub max_rows: usize,
    /// Publish when a write arrives and the pending log is older than
    /// this.
    pub max_age: Duration,
}

impl FlushPolicy {
    /// Every append publishes its own snapshot — the historical,
    /// strongest-consistency behaviour (and the library default).
    pub fn immediate() -> Self {
        FlushPolicy {
            max_rows: 1,
            max_age: Duration::ZERO,
        }
    }

    /// A buffered policy: coalesce up to `max_rows` rows (age bound
    /// `max_age`) into one published snapshot.
    pub fn buffered(max_rows: usize, max_age: Duration) -> Self {
        FlushPolicy {
            max_rows: max_rows.max(1),
            max_age,
        }
    }
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy::immediate()
    }
}

/// The pending (unpublished) delta log of one dataset.
#[derive(Debug, Default)]
struct Pending {
    /// Buffered rows, column-major, in arrival order.
    columns: Vec<Vec<f64>>,
    /// When the oldest buffered row arrived.
    since: Option<Instant>,
}

impl Pending {
    fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }
}

/// What a buffered append observed (mapped onto the wire response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Records visible to queries (the published snapshot).
    pub records: usize,
    /// Rows still buffered in the pending delta log.
    pub pending: usize,
    /// Version of the published snapshot.
    pub version: u64,
    /// Whether this append triggered a publication.
    pub flushed: bool,
}

/// What an explicit flush observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushOutcome {
    /// Records visible to queries after the flush.
    pub records: usize,
    /// Version of the published snapshot after the flush.
    pub version: u64,
    /// Rows the flush published (0 = nothing was pending).
    pub flushed_rows: usize,
}

/// One registered dataset: its immutable identity, the swappable
/// [`PreparedDataset`] snapshot, and the pending delta log.
#[derive(Debug)]
pub struct Dataset {
    /// The stable dataset id (client-chosen, validated).
    pub name: String,
    /// Record dimension (number of columns); fixed at registration.
    pub dim: usize,
    snapshot: RwLock<Arc<PreparedDataset>>,
    pending: Mutex<Pending>,
}

impl Dataset {
    /// The current immutable snapshot. Callers estimate against the
    /// returned `Arc` without holding any registry lock; a concurrent
    /// publication simply swaps in a successor snapshot. Pending
    /// (unflushed) rows are **not** visible — see `FlushPolicy`.
    pub fn snapshot(&self) -> Result<Arc<PreparedDataset>, RegistryError> {
        Ok(self
            .snapshot
            .read()
            .map_err(|_| RegistryError::Poisoned)?
            .clone())
    }

    /// Number of published records.
    pub fn len(&self) -> Result<usize, RegistryError> {
        Ok(self.snapshot()?.len())
    }

    /// Whether the published snapshot holds no records.
    pub fn is_empty(&self) -> Result<bool, RegistryError> {
        Ok(self.len()? == 0)
    }

    /// The current published snapshot version (0 at registration, +1
    /// per publication).
    pub fn version(&self) -> Result<u64, RegistryError> {
        Ok(self.snapshot()?.version())
    }

    /// Rows buffered in the pending delta log.
    pub fn pending_rows(&self) -> Result<usize, RegistryError> {
        Ok(self
            .pending
            .lock()
            .map_err(|_| RegistryError::Poisoned)?
            .rows())
    }

    /// Buffers `columns` and publishes if `policy` says so. The
    /// pending mutex is held across a triggered publication so
    /// concurrent appends publish their deltas in arrival order;
    /// queries never take this mutex.
    fn buffer_append(
        &self,
        columns: Vec<Vec<f64>>,
        policy: &FlushPolicy,
    ) -> Result<AppendOutcome, RegistryError> {
        let mut pending = self.pending.lock().map_err(|_| RegistryError::Poisoned)?;
        if pending.columns.is_empty() {
            pending.since = Some(Instant::now());
            pending.columns = columns;
        } else {
            for (dst, src) in pending.columns.iter_mut().zip(columns) {
                dst.extend_from_slice(&src);
            }
        }
        let rows = pending.rows();
        let aged = pending
            .since
            .is_some_and(|since| since.elapsed() >= policy.max_age);
        if rows >= policy.max_rows || aged {
            let delta = std::mem::take(&mut *pending);
            let (records, version) = self.publish(&delta.columns)?;
            return Ok(AppendOutcome {
                records,
                pending: 0,
                version,
                flushed: true,
            });
        }
        let snapshot = self.snapshot()?;
        Ok(AppendOutcome {
            records: snapshot.len(),
            pending: rows,
            version: snapshot.version(),
            flushed: false,
        })
    }

    /// Publishes whatever is pending (no-op when the log is empty).
    fn flush(&self) -> Result<FlushOutcome, RegistryError> {
        let mut pending = self.pending.lock().map_err(|_| RegistryError::Poisoned)?;
        let flushed_rows = pending.rows();
        if flushed_rows == 0 {
            let snapshot = self.snapshot()?;
            return Ok(FlushOutcome {
                records: snapshot.len(),
                version: snapshot.version(),
                flushed_rows: 0,
            });
        }
        let delta = std::mem::take(&mut *pending);
        let (records, version) = self.publish(&delta.columns)?;
        Ok(FlushOutcome {
            records,
            version,
            flushed_rows,
        })
    }

    /// Swaps in the successor snapshot for `delta` (caches
    /// merge-maintained by [`PreparedDataset::append`]).
    ///
    /// The `O(n + k)` successor build runs on a read-clone of the
    /// current snapshot so concurrent queries are never blocked behind
    /// it; the write lock is held only for the `Arc` swap. This is
    /// lost-update-safe because both callers hold the pending mutex,
    /// which serializes publications.
    fn publish(&self, delta: &[Vec<f64>]) -> Result<(usize, u64), RegistryError> {
        let parent = self.snapshot()?;
        let next = Arc::new(parent.append(delta));
        let records = next.len();
        let version = next.version();
        *self.snapshot.write().map_err(|_| RegistryError::Poisoned)? = next;
        Ok((records, version))
    }
}

/// Errors surfaced by registry operations (mapped to structured wire
/// errors by the server layer).
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// The dataset name failed validation.
    BadName(String),
    /// A dataset with this name already exists.
    AlreadyExists(String),
    /// No dataset with this name is registered.
    NotFound(String),
    /// Appended data does not match the dataset's dimension/shape.
    DimensionMismatch {
        /// The dataset's fixed dimension.
        expected: usize,
        /// The dimension of the offending payload.
        got: usize,
    },
    /// Columns of unequal length, or a non-finite value.
    BadData(String),
    /// A lock was poisoned by a panicked thread. Mapped to a 500
    /// `internal` wire error so one panic cannot cascade into every
    /// worker thread.
    Poisoned,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::BadName(name) => write!(
                f,
                "bad dataset name `{name}`: need 1..={MAX_NAME_LEN} chars of [A-Za-z0-9_-]"
            ),
            RegistryError::AlreadyExists(name) => write!(f, "dataset `{name}` already exists"),
            RegistryError::NotFound(name) => write!(f, "dataset `{name}` not found"),
            RegistryError::DimensionMismatch { expected, got } => {
                write!(f, "dataset has dimension {expected}, payload has {got}")
            }
            RegistryError::BadData(reason) => write!(f, "bad data: {reason}"),
            RegistryError::Poisoned => {
                write!(f, "internal synchronization error: a lock was poisoned")
            }
        }
    }
}

/// Validates a dataset name: `[A-Za-z0-9_-]{1,64}`.
pub fn validate_name(name: &str) -> Result<(), RegistryError> {
    let ok = !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
    if ok {
        Ok(())
    } else {
        Err(RegistryError::BadName(name.into()))
    }
}

/// Validates a column-major payload: at least one column, equal
/// lengths, all values finite. Public so the server can vet a
/// register request *before* touching the budget ledger.
pub fn validate_columns(columns: &[Vec<f64>]) -> Result<(), RegistryError> {
    if columns.is_empty() {
        return Err(RegistryError::BadData("no columns".into()));
    }
    let len = columns[0].len();
    if columns.iter().any(|c| c.len() != len) {
        return Err(RegistryError::BadData("columns of unequal length".into()));
    }
    if columns.iter().flatten().any(|x| !x.is_finite()) {
        return Err(RegistryError::BadData("non-finite value".into()));
    }
    Ok(())
}

/// One listing row: name, dimension, published records, pending rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListingRow {
    /// Dataset name (= stable id).
    pub name: String,
    /// Record dimension.
    pub dim: usize,
    /// Published (query-visible) record count.
    pub records: usize,
    /// Rows buffered in the pending delta log.
    pub pending: usize,
}

/// The sharded registry.
#[derive(Debug)]
pub struct Registry {
    shards: Vec<RwLock<HashMap<String, Arc<Dataset>>>>,
    policy: FlushPolicy,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty registry with [`SHARDS`] shards and the
    /// immediate (unbuffered) flush policy.
    pub fn new() -> Self {
        Registry::with_policy(FlushPolicy::immediate())
    }

    /// Creates an empty registry with an explicit [`FlushPolicy`].
    pub fn with_policy(policy: FlushPolicy) -> Self {
        Registry {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            policy,
        }
    }

    /// The registry's flush policy.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    fn shard(&self, name: &str) -> &RwLock<HashMap<String, Arc<Dataset>>> {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        &self.shards[hasher.finish() as usize % SHARDS]
    }

    /// Registers a new dataset from column-major data.
    pub fn register(
        &self,
        name: &str,
        columns: Vec<Vec<f64>>,
    ) -> Result<Arc<Dataset>, RegistryError> {
        validate_name(name)?;
        validate_columns(&columns)?;
        let mut shard = self
            .shard(name)
            .write()
            .map_err(|_| RegistryError::Poisoned)?;
        if shard.contains_key(name) {
            return Err(RegistryError::AlreadyExists(name.into()));
        }
        let dataset = Arc::new(Dataset {
            name: name.into(),
            dim: columns.len(),
            // Serving opts in to the cache-legal pair-gap summary
            // (DESIGN.md §12): warm quantile/IQR queries answer gap
            // counts from a per-snapshot cached summary instead of an
            // O(n) per-call scan. The experiment suite never opts in,
            // so its outputs stay byte-identical to the historical
            // path; serve-side draws are equally valid and stay fully
            // deterministic per (snapshot, seed).
            snapshot: RwLock::new(Arc::new(PreparedDataset::new(columns).with_gap_summaries())),
            pending: Mutex::new(Pending::default()),
        });
        shard.insert(name.into(), Arc::clone(&dataset));
        Ok(dataset)
    }

    /// Looks a dataset up by name.
    pub fn get(&self, name: &str) -> Result<Arc<Dataset>, RegistryError> {
        self.shard(name)
            .read()
            .map_err(|_| RegistryError::Poisoned)?
            .get(name)
            .cloned()
            .ok_or_else(|| RegistryError::NotFound(name.into()))
    }

    /// Appends records (column-major, same dimension) to a dataset's
    /// pending delta log, publishing a successor snapshot when the
    /// registry's [`FlushPolicy`] row/age threshold is hit. Under
    /// [`FlushPolicy::immediate`] every append publishes, matching the
    /// historical behaviour. Publication never mutates a snapshot:
    /// queries already holding the old `Arc` finish on consistent
    /// data, and the successor's warm caches are merge-maintained in
    /// `O(n + k)`.
    pub fn append(
        &self,
        name: &str,
        columns: Vec<Vec<f64>>,
    ) -> Result<AppendOutcome, RegistryError> {
        validate_columns(&columns)?;
        let dataset = self.get(name)?;
        if columns.len() != dataset.dim {
            return Err(RegistryError::DimensionMismatch {
                expected: dataset.dim,
                got: columns.len(),
            });
        }
        dataset.buffer_append(columns, &self.policy)
    }

    /// Publishes a dataset's pending delta log immediately (no-op when
    /// nothing is pending).
    pub fn flush(&self, name: &str) -> Result<FlushOutcome, RegistryError> {
        self.get(name)?.flush()
    }

    /// Drops a dataset's data (published and pending). The budget
    /// ledger entry deliberately survives (see `crate::ledger`):
    /// dropping and re-registering a name must not mint fresh budget.
    pub fn drop_dataset(&self, name: &str) -> Result<(), RegistryError> {
        self.shard(name)
            .write()
            .map_err(|_| RegistryError::Poisoned)?
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| RegistryError::NotFound(name.into()))
    }

    /// All registered datasets as listing rows, sorted by name for
    /// stable listings.
    pub fn list(&self) -> Result<Vec<ListingRow>, RegistryError> {
        let mut rows: Vec<ListingRow> = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().map_err(|_| RegistryError::Poisoned)?;
            for d in shard.values() {
                rows.push(ListingRow {
                    name: d.name.clone(),
                    dim: d.dim,
                    records: d.len()?,
                    pending: d.pending_rows()?,
                });
            }
        }
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(rows)
    }
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn col(xs: &[f64]) -> Vec<Vec<f64>> {
        vec![xs.to_vec()]
    }

    #[test]
    fn register_get_append_drop_round_trip() {
        let reg = Registry::new();
        reg.register("a", col(&[1.0, 2.0])).unwrap();
        assert_eq!(reg.get("a").unwrap().len().unwrap(), 2);
        let outcome = reg.append("a", col(&[3.0])).unwrap();
        assert_eq!(outcome.records, 3);
        assert!(outcome.flushed, "immediate policy publishes every append");
        assert_eq!(outcome.pending, 0);
        assert_eq!(
            reg.list().unwrap(),
            vec![ListingRow {
                name: "a".into(),
                dim: 1,
                records: 3,
                pending: 0
            }]
        );
        reg.drop_dataset("a").unwrap();
        assert_eq!(
            reg.get("a").unwrap_err(),
            RegistryError::NotFound("a".into())
        );
    }

    #[test]
    fn buffered_appends_coalesce_into_one_snapshot() {
        let reg = Registry::with_policy(FlushPolicy::buffered(3, Duration::from_secs(3600)));
        reg.register("s", col(&[1.0, 2.0])).unwrap();
        let dataset = reg.get("s").unwrap();
        let v0 = dataset.snapshot().unwrap();

        // Two 1-row appends stay pending: queries still see v0.
        let a = reg.append("s", col(&[3.0])).unwrap();
        assert!(!a.flushed);
        assert_eq!((a.records, a.pending, a.version), (2, 1, 0));
        let b = reg.append("s", col(&[4.0])).unwrap();
        assert_eq!((b.records, b.pending, b.version), (2, 2, 0));
        assert_eq!(dataset.len().unwrap(), 2);

        // The third row hits the threshold: ONE publication for the
        // whole burst, version 1 (not 3).
        let c = reg.append("s", col(&[5.0])).unwrap();
        assert!(c.flushed);
        assert_eq!((c.records, c.pending, c.version), (5, 0, 1));
        let v1 = dataset.snapshot().unwrap();
        assert!(!Arc::ptr_eq(&v0, &v1));
        assert_eq!(v1.columns()[0], vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        // The retained old snapshot is untouched.
        assert_eq!(v0.len(), 2);
    }

    #[test]
    fn explicit_flush_publishes_pending_rows() {
        let reg = Registry::with_policy(FlushPolicy::buffered(100, Duration::from_secs(3600)));
        reg.register("s", col(&[1.0])).unwrap();
        reg.append("s", col(&[2.0])).unwrap();
        reg.append("s", col(&[3.0])).unwrap();
        assert_eq!(reg.get("s").unwrap().pending_rows().unwrap(), 2);
        let flushed = reg.flush("s").unwrap();
        assert_eq!(
            flushed,
            FlushOutcome {
                records: 3,
                version: 1,
                flushed_rows: 2
            }
        );
        // Flushing again is a no-op.
        let again = reg.flush("s").unwrap();
        assert_eq!(
            again,
            FlushOutcome {
                records: 3,
                version: 1,
                flushed_rows: 0
            }
        );
    }

    #[test]
    fn age_threshold_publishes_on_the_next_write() {
        let reg = Registry::with_policy(FlushPolicy::buffered(100, Duration::ZERO));
        reg.register("s", col(&[1.0])).unwrap();
        // max_age = 0: the very first buffered write is already "old",
        // so every append publishes despite the generous row budget.
        let a = reg.append("s", col(&[2.0])).unwrap();
        assert!(a.flushed);
        assert_eq!(a.records, 2);
    }

    #[test]
    fn rejects_duplicates_bad_names_and_bad_data() {
        let reg = Registry::new();
        reg.register("a", col(&[1.0])).unwrap();
        assert!(matches!(
            reg.register("a", col(&[1.0])),
            Err(RegistryError::AlreadyExists(_))
        ));
        assert!(matches!(
            reg.register("bad name!", col(&[1.0])),
            Err(RegistryError::BadName(_))
        ));
        assert!(matches!(
            reg.register("nan", col(&[f64::NAN])),
            Err(RegistryError::BadData(_))
        ));
        assert!(matches!(
            reg.register("ragged", vec![vec![1.0], vec![]]),
            Err(RegistryError::BadData(_))
        ));
    }

    #[test]
    fn append_enforces_dimension() {
        let reg = Registry::new();
        reg.register("m", vec![vec![1.0], vec![2.0]]).unwrap();
        assert!(matches!(
            reg.append("m", col(&[1.0])),
            Err(RegistryError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn shards_do_not_alias_datasets() {
        let reg = Registry::new();
        for i in 0..100 {
            reg.register(&format!("ds-{i}"), col(&[i as f64])).unwrap();
        }
        assert_eq!(reg.list().unwrap().len(), 100);
        for i in 0..100 {
            let d = reg.get(&format!("ds-{i}")).unwrap();
            assert_eq!(d.snapshot().unwrap().columns()[0][0], i as f64);
        }
    }

    #[test]
    fn append_replaces_the_snapshot_and_carries_caches_forward() {
        let reg = Registry::new();
        reg.register("v", col(&[5.0, 1.0, 3.0])).unwrap();
        let dataset = reg.get("v").unwrap();
        let before = dataset.snapshot().unwrap();
        assert_eq!(before.version(), 0);
        // Warm the caches on the pre-append snapshot.
        let sorted = before.view().col(0).sorted();
        assert_eq!(sorted.as_slice(), &[1.0, 3.0, 5.0]);
        let _ = before.view().col(0).grid(1.0).unwrap();

        reg.append("v", col(&[9.0, 7.0])).unwrap();
        let after = dataset.snapshot().unwrap();
        assert!(!Arc::ptr_eq(&before, &after), "append must swap snapshots");
        assert_eq!(after.version(), 1);
        assert_eq!(after.len(), 5);
        // The successor's artifacts arrive warm (merge-maintained) and
        // already see the appended rows…
        assert!(after.view().col(0).has_sorted());
        assert!(after.view().col(0).cached_grids() >= 1);
        assert_eq!(
            after.view().col(0).sorted().as_slice(),
            &[1.0, 3.0, 5.0, 7.0, 9.0]
        );
        // …while the retained old snapshot stays consistent.
        assert_eq!(before.len(), 3);
        assert_eq!(before.view().col(0).sorted().as_slice(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn poisoned_snapshot_lock_is_an_error_not_a_cascade() {
        let reg = Registry::new();
        reg.register("p", col(&[1.0, 2.0])).unwrap();
        let dataset = reg.get("p").unwrap();
        // Poison the snapshot lock: panic while holding the writer.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = dataset.snapshot.write().unwrap();
            panic!("poison");
        }));
        assert!(poison.is_err());
        assert_eq!(dataset.snapshot().unwrap_err(), RegistryError::Poisoned);
        assert_eq!(
            reg.append("p", col(&[3.0])).unwrap_err(),
            RegistryError::Poisoned
        );
        assert_eq!(reg.list().unwrap_err(), RegistryError::Poisoned);
        // Other datasets (other locks) keep working.
        reg.register("ok", col(&[1.0])).unwrap();
        assert_eq!(reg.get("ok").unwrap().len().unwrap(), 1);
    }
}
