//! The sharded in-memory dataset registry.
//!
//! Datasets are keyed by a client-chosen *name* which doubles as the
//! stable dataset id: it survives server restarts (the budget
//! [`crate::ledger`] is keyed the same way, which is what makes
//! restart-replay impossible) and is validated to a conservative token
//! alphabet so it can appear verbatim in URLs, file names, and logs.
//!
//! Concurrency layout: names hash to one of [`SHARDS`] shards, each an
//! independent `RwLock<HashMap>`; dataset *contents* are an immutable
//! [`PreparedDataset`] snapshot behind a per-dataset
//! `RwLock<Arc<…>>`. Queries clone the `Arc` and estimate **without
//! holding any lock** — readers never block each other or appends.
//! [`Registry::append`] is copy-on-write: it derives a new snapshot
//! (fresh artifact caches, bumped version) and swaps the `Arc`, so the
//! sorted/discretized artifacts cached by `PreparedDataset` can never
//! describe stale rows, while in-flight queries keep their consistent
//! old snapshot.
//!
//! Data is stored column-major (`dim` columns of equal length): scalar
//! datasets are one column, and the multivariate mean estimator
//! consumes per-coordinate columns directly without re-slicing rows.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};
use updp_statistical::PreparedDataset;

/// Number of registry shards. A fixed small power of two: enough to
/// decorrelate unrelated datasets' lock traffic, cheap to scan for
/// listings.
pub const SHARDS: usize = 16;

/// Maximum dataset-name length (the name is the wire-visible id).
pub const MAX_NAME_LEN: usize = 64;

/// One registered dataset: its immutable identity plus the swappable
/// [`PreparedDataset`] snapshot.
#[derive(Debug)]
pub struct Dataset {
    /// The stable dataset id (client-chosen, validated).
    pub name: String,
    /// Record dimension (number of columns); fixed at registration.
    pub dim: usize,
    snapshot: RwLock<Arc<PreparedDataset>>,
}

impl Dataset {
    /// The current immutable snapshot. Callers estimate against the
    /// returned `Arc` without holding any registry lock; a concurrent
    /// append simply swaps in a successor snapshot.
    pub fn snapshot(&self) -> Arc<PreparedDataset> {
        self.snapshot.read().unwrap().clone()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.snapshot.read().unwrap().len()
    }

    /// Whether the dataset currently holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current snapshot version (0 at registration, +1 per
    /// append).
    pub fn version(&self) -> u64 {
        self.snapshot.read().unwrap().version()
    }
}

/// Errors surfaced by registry operations (mapped to structured wire
/// errors by the server layer).
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// The dataset name failed validation.
    BadName(String),
    /// A dataset with this name already exists.
    AlreadyExists(String),
    /// No dataset with this name is registered.
    NotFound(String),
    /// Appended data does not match the dataset's dimension/shape.
    DimensionMismatch {
        /// The dataset's fixed dimension.
        expected: usize,
        /// The dimension of the offending payload.
        got: usize,
    },
    /// Columns of unequal length, or a non-finite value.
    BadData(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::BadName(name) => write!(
                f,
                "bad dataset name `{name}`: need 1..={MAX_NAME_LEN} chars of [A-Za-z0-9_-]"
            ),
            RegistryError::AlreadyExists(name) => write!(f, "dataset `{name}` already exists"),
            RegistryError::NotFound(name) => write!(f, "dataset `{name}` not found"),
            RegistryError::DimensionMismatch { expected, got } => {
                write!(f, "dataset has dimension {expected}, payload has {got}")
            }
            RegistryError::BadData(reason) => write!(f, "bad data: {reason}"),
        }
    }
}

/// Validates a dataset name: `[A-Za-z0-9_-]{1,64}`.
pub fn validate_name(name: &str) -> Result<(), RegistryError> {
    let ok = !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
    if ok {
        Ok(())
    } else {
        Err(RegistryError::BadName(name.into()))
    }
}

/// Validates a column-major payload: at least one column, equal
/// lengths, all values finite. Public so the server can vet a
/// register request *before* touching the budget ledger.
pub fn validate_columns(columns: &[Vec<f64>]) -> Result<(), RegistryError> {
    if columns.is_empty() {
        return Err(RegistryError::BadData("no columns".into()));
    }
    let len = columns[0].len();
    if columns.iter().any(|c| c.len() != len) {
        return Err(RegistryError::BadData("columns of unequal length".into()));
    }
    if columns.iter().flatten().any(|x| !x.is_finite()) {
        return Err(RegistryError::BadData("non-finite value".into()));
    }
    Ok(())
}

/// The sharded registry.
#[derive(Debug)]
pub struct Registry {
    shards: Vec<RwLock<HashMap<String, Arc<Dataset>>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty registry with [`SHARDS`] shards.
    pub fn new() -> Self {
        Registry {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, name: &str) -> &RwLock<HashMap<String, Arc<Dataset>>> {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        &self.shards[hasher.finish() as usize % SHARDS]
    }

    /// Registers a new dataset from column-major data.
    pub fn register(
        &self,
        name: &str,
        columns: Vec<Vec<f64>>,
    ) -> Result<Arc<Dataset>, RegistryError> {
        validate_name(name)?;
        validate_columns(&columns)?;
        let mut shard = self.shard(name).write().unwrap();
        if shard.contains_key(name) {
            return Err(RegistryError::AlreadyExists(name.into()));
        }
        let dataset = Arc::new(Dataset {
            name: name.into(),
            dim: columns.len(),
            snapshot: RwLock::new(Arc::new(PreparedDataset::new(columns))),
        });
        shard.insert(name.into(), Arc::clone(&dataset));
        Ok(dataset)
    }

    /// Looks a dataset up by name.
    pub fn get(&self, name: &str) -> Result<Arc<Dataset>, RegistryError> {
        self.shard(name)
            .read()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| RegistryError::NotFound(name.into()))
    }

    /// Appends records (column-major, same dimension) to a dataset and
    /// returns its new record count. The dataset's snapshot — and with
    /// it every cached sorted/discretized artifact — is **replaced**,
    /// never mutated: queries already holding the old snapshot finish
    /// on consistent data, and the next query sees the new rows with
    /// fresh caches.
    pub fn append(&self, name: &str, columns: Vec<Vec<f64>>) -> Result<usize, RegistryError> {
        validate_columns(&columns)?;
        let dataset = self.get(name)?;
        if columns.len() != dataset.dim {
            return Err(RegistryError::DimensionMismatch {
                expected: dataset.dim,
                got: columns.len(),
            });
        }
        let mut held = dataset.snapshot.write().unwrap();
        let next = held.append(&columns);
        let records = next.len();
        *held = Arc::new(next);
        Ok(records)
    }

    /// Drops a dataset's data. The budget ledger entry deliberately
    /// survives (see `crate::ledger`): dropping and re-registering a
    /// name must not mint fresh budget.
    pub fn drop_dataset(&self, name: &str) -> Result<(), RegistryError> {
        self.shard(name)
            .write()
            .unwrap()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| RegistryError::NotFound(name.into()))
    }

    /// All registered datasets as `(name, dim, records)` rows, sorted
    /// by name for stable listings.
    pub fn list(&self) -> Vec<(String, usize, usize)> {
        let mut rows: Vec<(String, usize, usize)> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .read()
                    .unwrap()
                    .values()
                    .map(|d| (d.name.clone(), d.dim, d.len()))
                    .collect::<Vec<_>>()
            })
            .collect();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(xs: &[f64]) -> Vec<Vec<f64>> {
        vec![xs.to_vec()]
    }

    #[test]
    fn register_get_append_drop_round_trip() {
        let reg = Registry::new();
        reg.register("a", col(&[1.0, 2.0])).unwrap();
        assert_eq!(reg.get("a").unwrap().len(), 2);
        assert_eq!(reg.append("a", col(&[3.0])).unwrap(), 3);
        assert_eq!(reg.list(), vec![("a".into(), 1, 3)]);
        reg.drop_dataset("a").unwrap();
        assert_eq!(
            reg.get("a").unwrap_err(),
            RegistryError::NotFound("a".into())
        );
    }

    #[test]
    fn rejects_duplicates_bad_names_and_bad_data() {
        let reg = Registry::new();
        reg.register("a", col(&[1.0])).unwrap();
        assert!(matches!(
            reg.register("a", col(&[1.0])),
            Err(RegistryError::AlreadyExists(_))
        ));
        assert!(matches!(
            reg.register("bad name!", col(&[1.0])),
            Err(RegistryError::BadName(_))
        ));
        assert!(matches!(
            reg.register("nan", col(&[f64::NAN])),
            Err(RegistryError::BadData(_))
        ));
        assert!(matches!(
            reg.register("ragged", vec![vec![1.0], vec![]]),
            Err(RegistryError::BadData(_))
        ));
    }

    #[test]
    fn append_enforces_dimension() {
        let reg = Registry::new();
        reg.register("m", vec![vec![1.0], vec![2.0]]).unwrap();
        assert!(matches!(
            reg.append("m", col(&[1.0])),
            Err(RegistryError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn shards_do_not_alias_datasets() {
        let reg = Registry::new();
        for i in 0..100 {
            reg.register(&format!("ds-{i}"), col(&[i as f64])).unwrap();
        }
        assert_eq!(reg.list().len(), 100);
        for i in 0..100 {
            let d = reg.get(&format!("ds-{i}")).unwrap();
            assert_eq!(d.snapshot().columns()[0][0], i as f64);
        }
    }

    #[test]
    fn append_replaces_the_snapshot_and_invalidates_caches() {
        let reg = Registry::new();
        reg.register("v", col(&[5.0, 1.0, 3.0])).unwrap();
        let dataset = reg.get("v").unwrap();
        let before = dataset.snapshot();
        assert_eq!(before.version(), 0);
        // Warm the caches on the pre-append snapshot.
        let sorted = before.view().col(0).sorted();
        assert_eq!(sorted.as_slice(), &[1.0, 3.0, 5.0]);
        let _ = before.view().col(0).grid(1.0).unwrap();

        reg.append("v", col(&[9.0, 7.0])).unwrap();
        let after = dataset.snapshot();
        assert!(!Arc::ptr_eq(&before, &after), "append must swap snapshots");
        assert_eq!(after.version(), 1);
        assert_eq!(after.len(), 5);
        // The new snapshot's artifacts see the appended rows…
        assert_eq!(
            after.view().col(0).sorted().as_slice(),
            &[1.0, 3.0, 5.0, 7.0, 9.0]
        );
        // …while the retained old snapshot stays consistent.
        assert_eq!(before.len(), 3);
        assert_eq!(before.view().col(0).sorted().as_slice(), &[1.0, 3.0, 5.0]);
    }
}
