//! The query engine: budgeted, deterministic, optionally hardened —
//! dispatching any registered estimator **by name**.
//!
//! A batch request is a list of independent queries against one
//! dataset plus a client seed. Each query names an estimator from the
//! [`EstimatorCatalog`] — the five universal estimators *and* every
//! Table 1 baseline (`"kv18"`, `"dl09"`, …, with their required
//! assumptions echoed back in the response). Execution is three
//! deterministic phases:
//!
//! 1. **Validate + Reserve** — estimator names are resolved and their
//!    parameters validated *before any budget moves*; then, in query
//!    order, each query's nominal ε is atomically reserved in the
//!    [`crate::ledger::Ledger`]; refusals are recorded and those
//!    queries never execute. Sequential reservation makes the refusal
//!    pattern a pure function of the ledger state and the request,
//!    independent of thread scheduling.
//! 2. **Execute** — granted queries run concurrently through
//!    [`updp_core::parallel::par_map_indexed`] against one
//!    [`PreparedDataset`](updp_statistical::PreparedDataset) snapshot
//!    (no registry lock is held during estimation; repeated queries
//!    reuse its cached sorted/discretized artifacts); query `i`
//!    derives its generator from `child_seed(request_seed, i)`
//!    (DESIGN.md §1.1), so the response is bit-reproducible for a
//!    given seed at any thread count.
//! 3. **Settle** — in query order, hardened releases charge their
//!    snapping ε inflation as a top-up (it depends on the privately
//!    derived noise scale, so it is only known post-execution). A
//!    failed top-up converts the result into a refusal.
//!
//! **Hardened release mode** (on by default; `"raw": true` opts out
//! for experiment parity) routes every scalar release through
//! [`updp_core::snapping::snapped_laplace_mechanism`]: the estimator
//! runs at `0.9·ε`, the remaining `0.1·ε` pays for the snapped
//! re-release whose sensitivity proxy is the estimator's own
//! [`Release::sensitivities`] entry (a privately derived or
//! public-parameter scale — see the trait docs), and the ledger is
//! debited `0.9·ε + 0.1·ε·(1 + inflation)` per DESIGN.md §1.3/§6.

use crate::ledger::{Ledger, LedgerError, Refusal};
use crate::registry::Dataset;
use rand::rngs::StdRng;
use std::collections::HashMap;
use updp_core::parallel::par_map_indexed;
use updp_core::privacy::Epsilon;
use updp_core::rng::{child_seed, seeded};
use updp_core::snapping::{snapped_laplace_mechanism, snapping_epsilon_inflation, snapping_lambda};
use updp_core::UpdpError;
use updp_statistical::{EstimateParams, Estimator, Release, DEFAULT_BETA};

/// Budget share driving the underlying estimator in hardened mode.
pub const ESTIMATOR_SHARE: f64 = 0.9;
/// Budget share paying for the snapped release in hardened mode.
pub const RELEASE_SHARE: f64 = 1.0 - ESTIMATOR_SHARE;

/// Default clamp bound `B` for hardened releases (DESIGN.md §6);
/// requests may override it per batch.
pub const DEFAULT_BOUND: f64 = 1e9;

/// The name-keyed estimator registry served by the engine: the five
/// universal estimators plus every `updp-baselines` comparator.
pub struct EstimatorCatalog {
    by_name: HashMap<&'static str, Box<dyn Estimator>>,
}

impl std::fmt::Debug for EstimatorCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EstimatorCatalog")
            .field("names", &self.names())
            .finish()
    }
}

impl Default for EstimatorCatalog {
    fn default() -> Self {
        EstimatorCatalog::standard()
    }
}

impl EstimatorCatalog {
    /// The full standard catalog (universal + baselines).
    pub fn standard() -> Self {
        let mut by_name: HashMap<&'static str, Box<dyn Estimator>> = HashMap::new();
        for est in updp_statistical::universal_estimators()
            .into_iter()
            .chain(updp_baselines::baseline_estimators())
        {
            let previous = by_name.insert(est.name(), est);
            debug_assert!(previous.is_none(), "duplicate estimator name");
        }
        EstimatorCatalog { by_name }
    }

    /// Resolves a wire name (accepting `multi_mean` as an alias for
    /// the historical `multi-mean`).
    pub fn get(&self, name: &str) -> Option<&dyn Estimator> {
        let canonical = if name == "multi_mean" {
            "multi-mean"
        } else {
            name
        };
        self.by_name.get(canonical).map(|b| b.as_ref())
    }

    /// All estimator names, sorted (for listings and error messages).
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.by_name.keys().copied().collect();
        names.sort_unstable();
        names
    }

    /// All estimators, sorted by name (for the `/v1/estimators`
    /// listing).
    pub fn iter(&self) -> impl Iterator<Item = &dyn Estimator> {
        let mut entries: Vec<&dyn Estimator> = self.by_name.values().map(|b| b.as_ref()).collect();
        entries.sort_by_key(|e| e.name());
        entries.into_iter()
    }
}

/// One query of a batch request.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// The estimator's registry name (`"mean"`, `"kv18"`, …).
    pub estimator: String,
    /// Nominal ε this query spends (hardened mode adds the snapping
    /// inflation on top).
    pub epsilon: f64,
    /// Estimator-specific parameters (quantile level `q`, assumed
    /// range `r`, …) as declared by the estimator's `ParamSpec`s.
    pub options: Vec<(String, f64)>,
}

impl QuerySpec {
    /// A parameter-less query spec.
    pub fn new(estimator: &str, epsilon: f64) -> Self {
        QuerySpec {
            estimator: estimator.into(),
            epsilon,
            options: Vec::new(),
        }
    }

    /// Adds a named parameter (builder style).
    pub fn with(mut self, name: &str, value: f64) -> Self {
        self.options.push((name.into(), value));
        self
    }
}

/// How released values leave the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReleaseMode {
    /// Default: snapped-Laplace hardened release (Mironov, CCS 2012).
    Hardened {
        /// Clamp bound `B`: releases land in `[-B, B]`.
        bound: f64,
    },
    /// Experiment-parity opt-out: the estimator output verbatim.
    Raw,
}

/// The release metadata attached to a successful result.
#[derive(Debug, Clone, PartialEq)]
pub enum ReleaseInfo {
    /// Raw mode: no snapping.
    Raw,
    /// Hardened mode: one grid width `Λ` per released scalar.
    Snapped {
        /// Grid widths — every released value is a multiple of its Λ.
        lambdas: Vec<f64>,
        /// The clamp bound in effect.
        bound: f64,
        /// Total ε inflation charged on top of the nominal ε.
        inflation: f64,
    },
}

/// Outcome of one query in a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// The query ran and released values.
    Released {
        /// The estimator's registry name.
        kind: &'static str,
        /// Table 1 assumptions the estimator's utility requires
        /// (echoed to the client; empty for universal estimators).
        assumptions: &'static [&'static str],
        /// The privacy guarantee the values carry.
        privacy: &'static str,
        /// Released value(s) — one entry, except `multi-mean`.
        values: Vec<f64>,
        /// Total ε debited from the ledger for this query.
        epsilon_charged: f64,
        /// Release-path metadata.
        release: ReleaseInfo,
    },
    /// The ledger refused the query's budget.
    Refused {
        /// The estimator's registry name.
        kind: &'static str,
        /// The structured refusal.
        refusal: Refusal,
    },
    /// The estimator itself failed (bad parameters, too little data…).
    Failed {
        /// The estimator's registry name.
        kind: &'static str,
        /// The estimator error, rendered.
        message: String,
    },
}

/// A batch execution error that aborts the whole request (as opposed
/// to per-query outcomes).
#[derive(Debug)]
pub enum EngineError {
    /// Ledger I/O or parameter failure.
    Ledger(LedgerError),
    /// A query names an estimator the catalog does not know.
    UnknownEstimator {
        /// The name the client sent.
        name: String,
        /// Every name the catalog does know.
        known: Vec<&'static str>,
    },
    /// A query spec is invalid before any budget is touched.
    BadQuery(String),
    /// An internal invariant failed (e.g. a poisoned registry lock);
    /// surfaced as a 500 `internal` wire error, not a worker panic.
    Internal(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Ledger(e) => write!(f, "{e}"),
            EngineError::UnknownEstimator { name, known } => write!(
                f,
                "unknown estimator `{name}`; known estimators: {}",
                known.join(", ")
            ),
            EngineError::BadQuery(reason) => write!(f, "bad query: {reason}"),
            EngineError::Internal(reason) => write!(f, "internal error: {reason}"),
        }
    }
}

impl From<LedgerError> for EngineError {
    fn from(e: LedgerError) -> Self {
        EngineError::Ledger(e)
    }
}

fn validate_spec(
    catalog: &EstimatorCatalog,
    spec: &QuerySpec,
    dim: usize,
) -> Result<(), EngineError> {
    let estimator = catalog
        .get(&spec.estimator)
        .ok_or_else(|| EngineError::UnknownEstimator {
            name: spec.estimator.clone(),
            known: catalog.names(),
        })?;
    if !(spec.epsilon.is_finite() && spec.epsilon > 0.0) {
        return Err(EngineError::BadQuery(format!(
            "epsilon must be finite and positive, got {}",
            spec.epsilon
        )));
    }
    if !estimator.multi_column() && dim != 1 {
        return Err(EngineError::BadQuery(format!(
            "query `{}` needs a dimension-1 dataset, got dimension {dim}",
            estimator.name()
        )));
    }
    // Parameter validation is budget-free: Epsilon is already vetted
    // above, so construction cannot fail here.
    let params =
        query_params(spec, spec.epsilon).map_err(|e| EngineError::BadQuery(e.to_string()))?;
    estimator
        .validate_params(&params)
        .map_err(|e| EngineError::BadQuery(e.to_string()))?;
    Ok(())
}

/// Builds the `EstimateParams` for a spec at an effective ε (the full
/// nominal ε in raw mode, `0.9·ε` in hardened mode).
fn query_params(spec: &QuerySpec, effective_epsilon: f64) -> Result<EstimateParams, UpdpError> {
    let mut params = EstimateParams::new(Epsilon::new(effective_epsilon)?).with_beta(DEFAULT_BETA);
    for (name, value) in &spec.options {
        params.set(name, *value);
    }
    Ok(params)
}

/// Executes a batch of queries against `dataset`, metering `ledger`.
///
/// Returns one [`QueryOutcome`] per spec, in spec order. See the
/// module docs for the three-phase structure and determinism argument.
pub fn execute_batch(
    dataset: &Dataset,
    catalog: &EstimatorCatalog,
    ledger: &Ledger,
    specs: &[QuerySpec],
    seed: u64,
    mode: ReleaseMode,
) -> Result<Vec<QueryOutcome>, EngineError> {
    execute_batch_observed(dataset, catalog, ledger, specs, seed, mode, None)
}

/// [`execute_batch`] with optional instrumentation: per-estimator
/// query counts, execution latency, and snapping-inflation totals
/// recorded into `obs` (DESIGN.md §11). Observe-only by construction:
/// the metrics sink is consulted for nothing — outcomes, seeds, and
/// ledger arithmetic are identical with `obs` present, absent, or
/// disabled (pinned by the bit-identical e2e test).
pub(crate) fn execute_batch_observed(
    dataset: &Dataset,
    catalog: &EstimatorCatalog,
    ledger: &Ledger,
    specs: &[QuerySpec],
    seed: u64,
    mode: ReleaseMode,
    obs: Option<&crate::metrics::ServeMetrics>,
) -> Result<Vec<QueryOutcome>, EngineError> {
    for spec in specs {
        validate_spec(catalog, spec, dataset.dim)?;
    }
    let estimators: Vec<&dyn Estimator> = specs
        .iter()
        .map(|spec| catalog.get(&spec.estimator).expect("validated above"))
        .collect();

    // Acquire the snapshot BEFORE any budget moves: if the registry
    // lock is poisoned, the request fails with `Internal` while the
    // ledger is untouched — otherwise retries against a wedged
    // dataset would drain its privacy budget with zero releases.
    let prepared = dataset
        .snapshot()
        .map_err(|e| EngineError::Internal(e.to_string()))?;

    // Phase 1: in-order nominal reservations ⇒ deterministic refusals.
    // One `reserve_many` call: item-by-item semantics, one snapshot
    // write for the whole batch.
    let nominal: Vec<f64> = specs.iter().map(|s| s.epsilon).collect();
    let granted: Vec<Option<Refusal>> = ledger
        .reserve_many(&dataset.name, &nominal)?
        .into_iter()
        .map(Result::err)
        .collect();

    // Phase 2: concurrent execution with per-query child seeds, all
    // against ONE immutable snapshot — no lock is held while
    // estimating, and every query of the batch sees the same data
    // version (and shares its artifact caches).
    let view = prepared.view();
    let executed: Vec<Option<Result<Execution, UpdpError>>> = par_map_indexed(specs.len(), |i| {
        granted[i].is_none().then(|| {
            let mut rng = seeded(child_seed(seed, i as u64));
            // Timing lives here (not in updp-obs) so the clock read
            // stays in transport-scoped code; the result feeds metrics
            // only, never the estimate.
            let started = obs.map(|_| std::time::Instant::now());
            let result = run_query(&view, estimators[i], &specs[i], mode, &mut rng);
            if let (Some(obs), Some(started)) = (obs, started) {
                obs.record_engine_query(estimators[i].name(), started.elapsed().as_micros() as u64);
            }
            result
        })
    });
    drop(view);
    drop(prepared);

    // Phase 3: in-order inflation top-ups (again one `reserve_many`),
    // then assemble outcomes.
    let inflations: Vec<f64> = executed
        .iter()
        .filter_map(|e| match e {
            Some(Ok(execution)) if execution.inflation() > 0.0 => Some(execution.inflation()),
            _ => None,
        })
        .collect();
    let mut topups = if inflations.is_empty() {
        Vec::new()
    } else {
        ledger.reserve_many(&dataset.name, &inflations)?
    }
    .into_iter();
    let mut outcomes = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let kind = estimators[i].name();
        let outcome = match (&granted[i], &executed[i]) {
            (Some(refusal), _) => QueryOutcome::Refused {
                kind,
                refusal: *refusal,
            },
            (None, Some(Ok(execution))) => {
                let topup = if execution.inflation() > 0.0 {
                    topups.next().expect("one top-up per inflated query").err()
                } else {
                    None
                };
                match topup {
                    Some(refusal) => QueryOutcome::Refused { kind, refusal },
                    None => {
                        if let Some(obs) = obs {
                            if execution.inflation() > 0.0 {
                                obs.record_engine_inflation(kind, execution.inflation());
                            }
                        }
                        QueryOutcome::Released {
                            kind,
                            assumptions: estimators[i].assumptions(),
                            privacy: estimators[i].privacy(),
                            values: execution.values.clone(),
                            epsilon_charged: spec.epsilon + execution.inflation(),
                            release: execution.release.clone(),
                        }
                    }
                }
            }
            (None, Some(Err(e))) => QueryOutcome::Failed {
                kind,
                message: e.to_string(),
            },
            (None, None) => unreachable!("granted query skipped execution"),
        };
        outcomes.push(outcome);
    }
    Ok(outcomes)
}

/// A successful estimator run, pre-settlement.
struct Execution {
    values: Vec<f64>,
    release: ReleaseInfo,
}

impl Execution {
    fn inflation(&self) -> f64 {
        match &self.release {
            ReleaseInfo::Raw => 0.0,
            ReleaseInfo::Snapped { inflation, .. } => *inflation,
        }
    }
}

fn eps(v: f64) -> Result<Epsilon, UpdpError> {
    Epsilon::new(v)
}

/// Runs one granted query through the estimator trait. In hardened
/// mode the estimator runs at `ESTIMATOR_SHARE·ε` and each released
/// scalar is re-released through the snapping mechanism at its share
/// of `RELEASE_SHARE·ε`, noised at the estimator's own
/// [`Release::sensitivities`] proxy (a privately-released or
/// public-parameter scale, so reusing it is post-processing).
fn run_query(
    view: &updp_statistical::DataView<'_>,
    estimator: &dyn Estimator,
    spec: &QuerySpec,
    mode: ReleaseMode,
    rng: &mut StdRng,
) -> Result<Execution, UpdpError> {
    let (est_eps, rel_eps) = match mode {
        ReleaseMode::Raw => (spec.epsilon, 0.0),
        ReleaseMode::Hardened { .. } => {
            (spec.epsilon * ESTIMATOR_SHARE, spec.epsilon * RELEASE_SHARE)
        }
    };
    let params = query_params(spec, est_eps)?;
    let released: Release = estimator.estimate(rng, view, &params)?;

    match mode {
        ReleaseMode::Raw => Ok(Execution {
            values: released.values,
            release: ReleaseInfo::Raw,
        }),
        ReleaseMode::Hardened { bound } => {
            let per_scalar = eps(rel_eps / released.values.len() as f64)?;
            let mut values = Vec::with_capacity(released.values.len());
            let mut lambdas = Vec::with_capacity(released.values.len());
            let mut inflation = 0.0;
            for (&value, &sensitivity) in released.values.iter().zip(&released.sensitivities) {
                let sensitivity = sensitivity.max(f64::MIN_POSITIVE);
                let scale = sensitivity / per_scalar.get();
                values.push(snapped_laplace_mechanism(
                    rng,
                    value,
                    sensitivity,
                    per_scalar,
                    bound,
                )?);
                lambdas.push(snapping_lambda(scale));
                inflation += per_scalar.get() * snapping_epsilon_inflation(scale, bound);
            }
            Ok(Execution {
                values,
                release: ReleaseInfo::Snapped {
                    lambdas,
                    bound,
                    inflation,
                },
            })
        }
    }
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use rand::Rng;
    use updp_core::privacy::Delta;
    use updp_dist::{ContinuousDistribution, Gaussian};
    use updp_statistical::estimate_mean;

    fn catalog() -> EstimatorCatalog {
        EstimatorCatalog::standard()
    }

    fn gaussian_registry(n: usize) -> (Registry, Ledger) {
        let mut rng = seeded(0xDA7A);
        let data = Gaussian::new(100.0, 5.0).unwrap().sample_vec(&mut rng, n);
        let registry = Registry::new();
        registry.register("g", vec![data]).unwrap();
        let ledger = Ledger::in_memory();
        ledger.register("g", 100.0).unwrap();
        (registry, ledger)
    }

    fn batch() -> Vec<QuerySpec> {
        vec![
            QuerySpec::new("mean", 0.5),
            QuerySpec::new("quantile", 0.5).with("q", 0.9),
            QuerySpec::new("iqr", 0.5),
        ]
    }

    #[test]
    fn batch_is_bit_reproducible_for_a_seed() {
        let (registry, ledger) = gaussian_registry(4_000);
        let dataset = registry.get("g").unwrap();
        let catalog = catalog();
        let mode = ReleaseMode::Hardened {
            bound: DEFAULT_BOUND,
        };
        let a = execute_batch(&dataset, &catalog, &ledger, &batch(), 7, mode).unwrap();
        let b = execute_batch(&dataset, &catalog, &ledger, &batch(), 7, mode).unwrap();
        assert_eq!(a, b);
        // And a different seed produces different draws.
        let c = execute_batch(&dataset, &catalog, &ledger, &batch(), 8, mode).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn thread_count_does_not_change_the_response() {
        let (registry, ledger) = gaussian_registry(4_000);
        let dataset = registry.get("g").unwrap();
        let catalog = catalog();
        let run = |threads: &str| {
            std::env::set_var(updp_core::parallel::THREADS_ENV, threads);
            let out =
                execute_batch(&dataset, &catalog, &ledger, &batch(), 7, ReleaseMode::Raw).unwrap();
            std::env::remove_var(updp_core::parallel::THREADS_ENV);
            out
        };
        assert_eq!(run("1"), run("8"));
    }

    #[test]
    fn hardened_releases_land_on_the_grid_and_charge_inflation() {
        let (registry, ledger) = gaussian_registry(4_000);
        let dataset = registry.get("g").unwrap();
        let catalog = catalog();
        let spent_before = ledger.account("g").unwrap().spent;
        let outcomes = execute_batch(
            &dataset,
            &catalog,
            &ledger,
            &batch(),
            3,
            ReleaseMode::Hardened {
                bound: DEFAULT_BOUND,
            },
        )
        .unwrap();
        let mut nominal = 0.0;
        for (outcome, spec) in outcomes.iter().zip(batch()) {
            nominal += spec.epsilon;
            match outcome {
                QueryOutcome::Released {
                    values,
                    epsilon_charged,
                    release:
                        ReleaseInfo::Snapped {
                            lambdas, inflation, ..
                        },
                    ..
                } => {
                    // DESIGN.md §1.3: released values are multiples of Λ.
                    for (value, lambda) in values.iter().zip(lambdas) {
                        let k = value / lambda;
                        assert!(
                            (k - k.round()).abs() < 1e-9,
                            "{value} not on grid Λ = {lambda}"
                        );
                    }
                    assert!(*inflation > 0.0);
                    assert!(*epsilon_charged > spec.epsilon);
                }
                other => panic!("expected snapped release, got {other:?}"),
            }
        }
        // The ledger was debited the *inflated* total, not the nominal.
        let spent = ledger.account("g").unwrap().spent - spent_before;
        assert!(spent > nominal, "spent {spent} <= nominal {nominal}");
    }

    #[test]
    fn raw_mode_matches_the_bare_estimator() {
        let (registry, ledger) = gaussian_registry(4_000);
        let dataset = registry.get("g").unwrap();
        let catalog = catalog();
        let specs = vec![QuerySpec::new("mean", 0.5)];
        let out = execute_batch(&dataset, &catalog, &ledger, &specs, 11, ReleaseMode::Raw).unwrap();
        let mut rng = seeded(child_seed(11, 0));
        let direct = estimate_mean(
            &mut rng,
            &dataset.snapshot().unwrap().columns()[0],
            Epsilon::new(0.5).unwrap(),
            DEFAULT_BETA,
        )
        .unwrap();
        match &out[0] {
            QueryOutcome::Released {
                values,
                epsilon_charged,
                release,
                assumptions,
                ..
            } => {
                assert_eq!(values[0].to_bits(), direct.estimate.to_bits());
                assert_eq!(*epsilon_charged, 0.5);
                assert_eq!(*release, ReleaseInfo::Raw);
                assert!(assumptions.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn baselines_are_servable_by_name_with_assumption_metadata() {
        let (registry, ledger) = gaussian_registry(4_000);
        let dataset = registry.get("g").unwrap();
        let catalog = catalog();
        let specs = vec![
            QuerySpec::new("kv18", 0.5)
                .with("r", 1000.0)
                .with("sigma_min", 0.1)
                .with("sigma_max", 100.0),
            QuerySpec::new("naive_clip", 0.5).with("r", 1000.0),
            QuerySpec::new("dl09", 0.5),
            QuerySpec::new("nonprivate", 0.5),
        ];
        let out = execute_batch(&dataset, &catalog, &ledger, &specs, 21, ReleaseMode::Raw).unwrap();

        // kv18 value matches the direct free function on the same
        // child seed, and carries its Table 1 assumptions.
        let mut rng = seeded(child_seed(21, 0));
        let direct = updp_baselines::kv18_gaussian_mean(
            &mut rng,
            &dataset.snapshot().unwrap().columns()[0],
            1000.0,
            0.1,
            100.0,
            Epsilon::new(0.5).unwrap(),
        )
        .unwrap();
        match &out[0] {
            QueryOutcome::Released {
                kind,
                values,
                assumptions,
                privacy,
                ..
            } => {
                assert_eq!(*kind, "kv18");
                assert_eq!(values[0].to_bits(), direct.to_bits());
                assert_eq!(*assumptions, &["A1", "A2", "A3"]);
                assert_eq!(*privacy, "ε-DP");
            }
            other => panic!("{other:?}"),
        }
        match &out[2] {
            QueryOutcome::Released { privacy, .. } => assert_eq!(*privacy, "(ε, δ)-DP"),
            // DL09's PTR may legitimately refuse on stability; that
            // surfaces as Failed, not a panic.
            QueryOutcome::Failed { message, .. } => assert!(message.contains("DL09")),
            other => panic!("{other:?}"),
        }
        match &out[3] {
            QueryOutcome::Released { privacy, .. } => assert_eq!(*privacy, "none"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_estimator_is_a_structured_pre_budget_error() {
        let (registry, ledger) = gaussian_registry(1_000);
        let dataset = registry.get("g").unwrap();
        let catalog = catalog();
        let specs = vec![QuerySpec::new("mode", 0.5)];
        let err =
            execute_batch(&dataset, &catalog, &ledger, &specs, 1, ReleaseMode::Raw).unwrap_err();
        match &err {
            EngineError::UnknownEstimator { name, known } => {
                assert_eq!(name, "mode");
                assert!(known.contains(&"kv18"));
                assert!(known.contains(&"mean"));
            }
            other => panic!("{other:?}"),
        }
        // No budget moved.
        assert_eq!(ledger.account("g").unwrap().spent, 0.0);
    }

    #[test]
    fn missing_required_baseline_params_fail_before_budget() {
        let (registry, ledger) = gaussian_registry(1_000);
        let dataset = registry.get("g").unwrap();
        let catalog = catalog();
        let specs = vec![QuerySpec::new("kv18", 0.5)];
        let err =
            execute_batch(&dataset, &catalog, &ledger, &specs, 1, ReleaseMode::Raw).unwrap_err();
        assert!(matches!(err, EngineError::BadQuery(_)), "{err:?}");
        assert_eq!(ledger.account("g").unwrap().spent, 0.0);
    }

    #[test]
    fn exhaustion_refuses_deterministically_mid_batch() {
        let (registry, _) = gaussian_registry(4_000);
        let dataset = registry.get("g").unwrap();
        let catalog = catalog();
        let ledger = Ledger::in_memory();
        ledger.register("g", 1.2).unwrap();
        let outcomes =
            execute_batch(&dataset, &catalog, &ledger, &batch(), 5, ReleaseMode::Raw).unwrap();
        assert!(matches!(outcomes[0], QueryOutcome::Released { .. }));
        assert!(matches!(outcomes[1], QueryOutcome::Released { .. }));
        match &outcomes[2] {
            QueryOutcome::Refused { refusal, .. } => {
                assert_eq!(refusal.requested, 0.5);
                assert!((refusal.available - 0.2).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_mean_over_columns() {
        let mut rng = seeded(9);
        let columns: Vec<Vec<f64>> = [10.0, -3.0]
            .iter()
            .map(|&mu| Gaussian::new(mu, 1.0).unwrap().sample_vec(&mut rng, 4_000))
            .collect();
        let registry = Registry::new();
        registry.register("mv", columns).unwrap();
        let ledger = Ledger::in_memory();
        ledger.register("mv", 10.0).unwrap();
        let dataset = registry.get("mv").unwrap();
        let catalog = catalog();
        // Both the historical wire name and the underscore alias work.
        for name in ["multi-mean", "multi_mean"] {
            let specs = vec![QuerySpec::new(name, 2.0)];
            let out =
                execute_batch(&dataset, &catalog, &ledger, &specs, 1, ReleaseMode::Raw).unwrap();
            match &out[0] {
                QueryOutcome::Released { values, kind, .. } => {
                    assert_eq!(*kind, "multi-mean");
                    assert_eq!(values.len(), 2);
                    assert!((values[0] - 10.0).abs() < 0.5, "{values:?}");
                    assert!((values[1] + 3.0).abs() < 0.5, "{values:?}");
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn scalar_queries_reject_multivariate_datasets() {
        let registry = Registry::new();
        registry
            .register("mv", vec![vec![1.0; 64], vec![2.0; 64]])
            .unwrap();
        let ledger = Ledger::in_memory();
        ledger.register("mv", 1.0).unwrap();
        let dataset = registry.get("mv").unwrap();
        let catalog = catalog();
        let specs = vec![QuerySpec::new("mean", 0.1)];
        let err =
            execute_batch(&dataset, &catalog, &ledger, &specs, 1, ReleaseMode::Raw).unwrap_err();
        assert!(matches!(err, EngineError::BadQuery(_)));
        // Validation happens before any budget moves.
        assert_eq!(ledger.account("mv").unwrap().spent, 0.0);
    }

    #[test]
    fn estimator_failures_surface_per_query_but_still_spend() {
        // 8 records is below MIN_N = 16: the budget is reserved (the
        // mechanism was authorized), then the estimator refuses.
        let registry = Registry::new();
        registry.register("tiny", vec![vec![1.0; 8]]).unwrap();
        let ledger = Ledger::in_memory();
        ledger.register("tiny", 1.0).unwrap();
        let dataset = registry.get("tiny").unwrap();
        let catalog = catalog();
        let specs = vec![QuerySpec::new("mean", 0.25)];
        let out = execute_batch(&dataset, &catalog, &ledger, &specs, 1, ReleaseMode::Raw).unwrap();
        assert!(matches!(&out[0], QueryOutcome::Failed { .. }), "{out:?}");
        assert_eq!(ledger.account("tiny").unwrap().spent, 0.25);
    }

    #[test]
    fn repeated_quantile_queries_reuse_the_snapshot_grid() {
        // The cache effect: after one quantile query, the snapshot has
        // a grid cached for the privately-chosen bucket; a repeat
        // query with the same seed must hit it (same bucket) and stay
        // bit-identical to the first.
        let (registry, ledger) = gaussian_registry(4_000);
        let dataset = registry.get("g").unwrap();
        let catalog = catalog();
        let specs = vec![QuerySpec::new("quantile", 0.25).with("q", 0.5)];
        let a = execute_batch(&dataset, &catalog, &ledger, &specs, 5, ReleaseMode::Raw).unwrap();
        let cached_after_first = dataset.snapshot().unwrap().view().col(0).cached_grids();
        assert!(cached_after_first >= 1, "first query must warm the cache");
        let b = execute_batch(&dataset, &catalog, &ledger, &specs, 5, ReleaseMode::Raw).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            dataset.snapshot().unwrap().view().col(0).cached_grids(),
            cached_after_first,
            "same-seed repeat must not grow the grid cache"
        );
    }

    #[test]
    fn dl09_delta_zero_rejected_pre_budget() {
        let (registry, ledger) = gaussian_registry(1_000);
        let dataset = registry.get("g").unwrap();
        let catalog = catalog();
        let specs = vec![QuerySpec::new("dl09", 0.5).with("delta", 0.0)];
        let err =
            execute_batch(&dataset, &catalog, &ledger, &specs, 1, ReleaseMode::Raw).unwrap_err();
        assert!(matches!(err, EngineError::BadQuery(_)));
        assert_eq!(ledger.account("g").unwrap().spent, 0.0);
        // A valid delta runs (or refuses inside PTR, but spends).
        let specs =
            vec![QuerySpec::new("dl09", 0.5).with("delta", Delta::new(1e-6).unwrap().get())];
        let out = execute_batch(&dataset, &catalog, &ledger, &specs, 1, ReleaseMode::Raw).unwrap();
        assert!(!matches!(&out[0], QueryOutcome::Refused { .. }));
    }

    #[test]
    fn seeds_follow_the_child_seed_scheme() {
        // Query i's stream is seeded(child_seed(seed, i)) — pin it so
        // the wire contract ("responses reproducible from the request
        // seed") can never silently drift from DESIGN.md §1.1.
        let mut a = seeded(child_seed(42, 1));
        let mut b = seeded(child_seed(42, 1));
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
