//! The query engine: budgeted, deterministic, optionally hardened.
//!
//! A batch request is a list of independent queries against one
//! dataset plus a client seed. Execution is three deterministic
//! phases:
//!
//! 1. **Reserve** — in query order, each query's nominal ε is
//!    atomically reserved in the [`crate::ledger::Ledger`]; refusals
//!    are recorded and those queries never execute. Sequential
//!    reservation makes the refusal pattern a pure function of the
//!    ledger state and the request, independent of thread scheduling.
//! 2. **Execute** — granted queries run concurrently through
//!    [`updp_core::parallel::par_map_indexed`]; query `i` derives its
//!    generator from `child_seed(request_seed, i)` (DESIGN.md §1.1),
//!    so the response is bit-reproducible for a given seed at any
//!    thread count.
//! 3. **Settle** — in query order, hardened releases charge their
//!    snapping ε inflation as a top-up (it depends on the privately
//!    derived noise scale, so it is only known post-execution). A
//!    failed top-up converts the result into a refusal.
//!
//! **Hardened release mode** (on by default; `"raw": true` opts out
//! for experiment parity) routes every scalar release through
//! [`updp_core::snapping::snapped_laplace_mechanism`]: the estimator
//! runs at `0.9·ε`, the remaining `0.1·ε` pays for the snapped
//! re-release whose sensitivity proxy is the estimator's own privately
//! derived bucket scale, and the ledger is debited
//! `0.9·ε + 0.1·ε·(1 + inflation)` per DESIGN.md §1.3/§6.

use crate::ledger::{Ledger, LedgerError, Refusal};
use crate::registry::Dataset;
use rand::rngs::StdRng;
use updp_core::parallel::par_map_indexed;
use updp_core::privacy::Epsilon;
use updp_core::rng::{child_seed, seeded};
use updp_core::snapping::{snapped_laplace_mechanism, snapping_epsilon_inflation, snapping_lambda};
use updp_core::UpdpError;
use updp_statistical::{
    estimate_iqr, estimate_mean, estimate_quantile, estimate_variance, DEFAULT_BETA,
};

/// Budget share driving the underlying estimator in hardened mode.
pub const ESTIMATOR_SHARE: f64 = 0.9;
/// Budget share paying for the snapped release in hardened mode.
pub const RELEASE_SHARE: f64 = 1.0 - ESTIMATOR_SHARE;

/// Default clamp bound `B` for hardened releases (DESIGN.md §6);
/// requests may override it per batch.
pub const DEFAULT_BOUND: f64 = 1e9;

/// One query of a batch request.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// What to estimate.
    pub kind: QueryKind,
    /// Nominal ε this query spends (hardened mode adds the snapping
    /// inflation on top).
    pub epsilon: f64,
}

/// The statistic a query requests.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// Universal mean (Algorithm 8); dimension-1 datasets only.
    Mean,
    /// Universal variance (Algorithm 9); dimension-1 datasets only.
    Variance,
    /// Universal `q`-quantile; dimension-1 datasets only.
    Quantile(f64),
    /// Universal IQR (Algorithm 10); dimension-1 datasets only.
    Iqr,
    /// Multivariate mean: one universal mean per column at ε/d,
    /// β/d (basic composition across coordinates).
    MultiMean,
}

impl QueryKind {
    /// The wire name of this kind.
    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::Mean => "mean",
            QueryKind::Variance => "variance",
            QueryKind::Quantile(_) => "quantile",
            QueryKind::Iqr => "iqr",
            QueryKind::MultiMean => "multi-mean",
        }
    }
}

/// How released values leave the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReleaseMode {
    /// Default: snapped-Laplace hardened release (Mironov, CCS 2012).
    Hardened {
        /// Clamp bound `B`: releases land in `[-B, B]`.
        bound: f64,
    },
    /// Experiment-parity opt-out: the estimator output verbatim.
    Raw,
}

/// The release metadata attached to a successful result.
#[derive(Debug, Clone, PartialEq)]
pub enum ReleaseInfo {
    /// Raw mode: no snapping.
    Raw,
    /// Hardened mode: one grid width `Λ` per released scalar.
    Snapped {
        /// Grid widths — every released value is a multiple of its Λ.
        lambdas: Vec<f64>,
        /// The clamp bound in effect.
        bound: f64,
        /// Total ε inflation charged on top of the nominal ε.
        inflation: f64,
    },
}

/// Outcome of one query in a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// The query ran and released values.
    Released {
        /// Wire name of the query kind.
        kind: &'static str,
        /// Released value(s) — one entry, except `multi-mean`.
        values: Vec<f64>,
        /// Total ε debited from the ledger for this query.
        epsilon_charged: f64,
        /// Release-path metadata.
        release: ReleaseInfo,
    },
    /// The ledger refused the query's budget.
    Refused {
        /// Wire name of the query kind.
        kind: &'static str,
        /// The structured refusal.
        refusal: Refusal,
    },
    /// The estimator itself failed (bad parameters, too little data…).
    Failed {
        /// Wire name of the query kind.
        kind: &'static str,
        /// The estimator error, rendered.
        message: String,
    },
}

/// A batch execution error that aborts the whole request (as opposed
/// to per-query outcomes).
#[derive(Debug)]
pub enum EngineError {
    /// Ledger I/O or parameter failure.
    Ledger(LedgerError),
    /// A query spec is invalid before any budget is touched.
    BadQuery(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Ledger(e) => write!(f, "{e}"),
            EngineError::BadQuery(reason) => write!(f, "bad query: {reason}"),
        }
    }
}

impl From<LedgerError> for EngineError {
    fn from(e: LedgerError) -> Self {
        EngineError::Ledger(e)
    }
}

fn validate_spec(spec: &QuerySpec, dim: usize) -> Result<(), EngineError> {
    if !(spec.epsilon.is_finite() && spec.epsilon > 0.0) {
        return Err(EngineError::BadQuery(format!(
            "epsilon must be finite and positive, got {}",
            spec.epsilon
        )));
    }
    if let QueryKind::Quantile(q) = spec.kind {
        if !(q > 0.0 && q < 1.0) {
            return Err(EngineError::BadQuery(format!(
                "quantile level must be in (0,1), got {q}"
            )));
        }
    }
    let scalar = !matches!(spec.kind, QueryKind::MultiMean);
    if scalar && dim != 1 {
        return Err(EngineError::BadQuery(format!(
            "query `{}` needs a dimension-1 dataset, got dimension {dim}",
            spec.kind.name()
        )));
    }
    Ok(())
}

/// Executes a batch of queries against `dataset`, metering `ledger`.
///
/// Returns one [`QueryOutcome`] per spec, in spec order. See the
/// module docs for the three-phase structure and determinism argument.
pub fn execute_batch(
    dataset: &Dataset,
    ledger: &Ledger,
    specs: &[QuerySpec],
    seed: u64,
    mode: ReleaseMode,
) -> Result<Vec<QueryOutcome>, EngineError> {
    for spec in specs {
        validate_spec(spec, dataset.dim)?;
    }

    // Phase 1: in-order nominal reservations ⇒ deterministic refusals.
    // One `reserve_many` call: item-by-item semantics, one snapshot
    // write for the whole batch.
    let nominal: Vec<f64> = specs.iter().map(|s| s.epsilon).collect();
    let granted: Vec<Option<Refusal>> = ledger
        .reserve_many(&dataset.name, &nominal)?
        .into_iter()
        .map(Result::err)
        .collect();

    // Phase 2: concurrent execution with per-query child seeds.
    let columns = dataset.columns.read().unwrap();
    let executed: Vec<Option<Result<Execution, UpdpError>>> = par_map_indexed(specs.len(), |i| {
        granted[i].is_none().then(|| {
            let mut rng = seeded(child_seed(seed, i as u64));
            run_query(&columns, &specs[i], mode, &mut rng)
        })
    });
    drop(columns);

    // Phase 3: in-order inflation top-ups (again one `reserve_many`),
    // then assemble outcomes.
    let inflations: Vec<f64> = executed
        .iter()
        .filter_map(|e| match e {
            Some(Ok(execution)) if execution.inflation() > 0.0 => Some(execution.inflation()),
            _ => None,
        })
        .collect();
    let mut topups = if inflations.is_empty() {
        Vec::new()
    } else {
        ledger.reserve_many(&dataset.name, &inflations)?
    }
    .into_iter();
    let mut outcomes = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let kind = spec.kind.name();
        let outcome = match (&granted[i], &executed[i]) {
            (Some(refusal), _) => QueryOutcome::Refused {
                kind,
                refusal: *refusal,
            },
            (None, Some(Ok(execution))) => {
                let topup = if execution.inflation() > 0.0 {
                    topups.next().expect("one top-up per inflated query").err()
                } else {
                    None
                };
                match topup {
                    Some(refusal) => QueryOutcome::Refused { kind, refusal },
                    None => QueryOutcome::Released {
                        kind,
                        values: execution.values.clone(),
                        epsilon_charged: spec.epsilon + execution.inflation(),
                        release: execution.release.clone(),
                    },
                }
            }
            (None, Some(Err(e))) => QueryOutcome::Failed {
                kind,
                message: e.to_string(),
            },
            (None, None) => unreachable!("granted query skipped execution"),
        };
        outcomes.push(outcome);
    }
    Ok(outcomes)
}

/// A successful estimator run, pre-settlement.
struct Execution {
    values: Vec<f64>,
    release: ReleaseInfo,
}

impl Execution {
    fn inflation(&self) -> f64 {
        match &self.release {
            ReleaseInfo::Raw => 0.0,
            ReleaseInfo::Snapped { inflation, .. } => *inflation,
        }
    }
}

fn eps(v: f64) -> Result<Epsilon, UpdpError> {
    Epsilon::new(v)
}

/// Runs one granted query. In hardened mode each scalar is estimated
/// at `ESTIMATOR_SHARE·ε` and re-released through the snapping
/// mechanism at `RELEASE_SHARE·ε`; the sensitivity proxies fed to the
/// snapped release are the estimators' own ε-DP scale diagnostics
/// (post-processing of private quantities, so reusing them is free).
fn run_query(
    columns: &[Vec<f64>],
    spec: &QuerySpec,
    mode: ReleaseMode,
    rng: &mut StdRng,
) -> Result<Execution, UpdpError> {
    let (est_eps, rel_eps) = match mode {
        ReleaseMode::Raw => (spec.epsilon, 0.0),
        ReleaseMode::Hardened { .. } => {
            (spec.epsilon * ESTIMATOR_SHARE, spec.epsilon * RELEASE_SHARE)
        }
    };
    // (value, sensitivity proxy) per released scalar. The proxy
    // mirrors each estimator's *final-release* sensitivity — clipping
    // width over n for means, radius over pair count for the variance,
    // the discretization bucket for quantile statistics — so the
    // snapped re-release adds noise of the same order as the
    // estimator's own release stage (a constant-factor utility cost,
    // never a change of error regime). All proxies are ε-DP outputs
    // themselves, so reusing them is post-processing.
    let released: Vec<(f64, f64)> = match spec.kind {
        QueryKind::Mean => {
            let est = estimate_mean(rng, &columns[0], eps(est_eps)?, DEFAULT_BETA)?;
            vec![(est.estimate, est.range.width() / columns[0].len() as f64)]
        }
        QueryKind::Variance => {
            let est = estimate_variance(rng, &columns[0], eps(est_eps)?, DEFAULT_BETA)?;
            vec![(est.estimate, est.radius / est.pairs.max(1) as f64)]
        }
        QueryKind::Quantile(q) => {
            let est = estimate_quantile(rng, &columns[0], q, eps(est_eps)?, DEFAULT_BETA)?;
            vec![(est.estimate, est.bucket)]
        }
        QueryKind::Iqr => {
            let est = estimate_iqr(rng, &columns[0], eps(est_eps)?, DEFAULT_BETA)?;
            vec![(est.estimate, est.bucket)]
        }
        QueryKind::MultiMean => {
            // Per-coordinate universal means at ε/d, β/d — the same
            // basic-composition layout as
            // `updp_statistical::estimate_mean_multivariate`, applied
            // to the registry's column-major storage.
            let d = columns.len();
            let coord_eps = eps(est_eps / d as f64)?;
            let coord_beta = DEFAULT_BETA / d as f64;
            columns
                .iter()
                .map(|column| {
                    let est = estimate_mean(rng, column, coord_eps, coord_beta)?;
                    Ok((est.estimate, est.range.width() / column.len() as f64))
                })
                .collect::<Result<_, UpdpError>>()?
        }
    };

    match mode {
        ReleaseMode::Raw => Ok(Execution {
            values: released.iter().map(|&(v, _)| v).collect(),
            release: ReleaseInfo::Raw,
        }),
        ReleaseMode::Hardened { bound } => {
            let per_scalar = eps(rel_eps / released.len() as f64)?;
            let mut values = Vec::with_capacity(released.len());
            let mut lambdas = Vec::with_capacity(released.len());
            let mut inflation = 0.0;
            for &(value, sensitivity) in &released {
                let sensitivity = sensitivity.max(f64::MIN_POSITIVE);
                let scale = sensitivity / per_scalar.get();
                values.push(snapped_laplace_mechanism(
                    rng,
                    value,
                    sensitivity,
                    per_scalar,
                    bound,
                )?);
                lambdas.push(snapping_lambda(scale));
                inflation += per_scalar.get() * snapping_epsilon_inflation(scale, bound);
            }
            Ok(Execution {
                values,
                release: ReleaseInfo::Snapped {
                    lambdas,
                    bound,
                    inflation,
                },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use rand::Rng;
    use updp_dist::{ContinuousDistribution, Gaussian};

    fn gaussian_registry(n: usize) -> (Registry, Ledger) {
        let mut rng = seeded(0xDA7A);
        let data = Gaussian::new(100.0, 5.0).unwrap().sample_vec(&mut rng, n);
        let registry = Registry::new();
        registry.register("g", vec![data]).unwrap();
        let ledger = Ledger::in_memory();
        ledger.register("g", 100.0).unwrap();
        (registry, ledger)
    }

    fn batch() -> Vec<QuerySpec> {
        vec![
            QuerySpec {
                kind: QueryKind::Mean,
                epsilon: 0.5,
            },
            QuerySpec {
                kind: QueryKind::Quantile(0.9),
                epsilon: 0.5,
            },
            QuerySpec {
                kind: QueryKind::Iqr,
                epsilon: 0.5,
            },
        ]
    }

    #[test]
    fn batch_is_bit_reproducible_for_a_seed() {
        let (registry, ledger) = gaussian_registry(4_000);
        let dataset = registry.get("g").unwrap();
        let mode = ReleaseMode::Hardened {
            bound: DEFAULT_BOUND,
        };
        let a = execute_batch(&dataset, &ledger, &batch(), 7, mode).unwrap();
        let b = execute_batch(&dataset, &ledger, &batch(), 7, mode).unwrap();
        assert_eq!(a, b);
        // And a different seed produces different draws.
        let c = execute_batch(&dataset, &ledger, &batch(), 8, mode).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn thread_count_does_not_change_the_response() {
        let (registry, ledger) = gaussian_registry(4_000);
        let dataset = registry.get("g").unwrap();
        let run = |threads: &str| {
            std::env::set_var(updp_core::parallel::THREADS_ENV, threads);
            let out = execute_batch(&dataset, &ledger, &batch(), 7, ReleaseMode::Raw).unwrap();
            std::env::remove_var(updp_core::parallel::THREADS_ENV);
            out
        };
        assert_eq!(run("1"), run("8"));
    }

    #[test]
    fn hardened_releases_land_on_the_grid_and_charge_inflation() {
        let (registry, ledger) = gaussian_registry(4_000);
        let dataset = registry.get("g").unwrap();
        let spent_before = ledger.account("g").unwrap().spent;
        let outcomes = execute_batch(
            &dataset,
            &ledger,
            &batch(),
            3,
            ReleaseMode::Hardened {
                bound: DEFAULT_BOUND,
            },
        )
        .unwrap();
        let mut nominal = 0.0;
        for (outcome, spec) in outcomes.iter().zip(batch()) {
            nominal += spec.epsilon;
            match outcome {
                QueryOutcome::Released {
                    values,
                    epsilon_charged,
                    release:
                        ReleaseInfo::Snapped {
                            lambdas, inflation, ..
                        },
                    ..
                } => {
                    // DESIGN.md §1.3: released values are multiples of Λ.
                    for (value, lambda) in values.iter().zip(lambdas) {
                        let k = value / lambda;
                        assert!(
                            (k - k.round()).abs() < 1e-9,
                            "{value} not on grid Λ = {lambda}"
                        );
                    }
                    assert!(*inflation > 0.0);
                    assert!(*epsilon_charged > spec.epsilon);
                }
                other => panic!("expected snapped release, got {other:?}"),
            }
        }
        // The ledger was debited the *inflated* total, not the nominal.
        let spent = ledger.account("g").unwrap().spent - spent_before;
        assert!(spent > nominal, "spent {spent} <= nominal {nominal}");
    }

    #[test]
    fn raw_mode_matches_the_bare_estimator() {
        let (registry, ledger) = gaussian_registry(4_000);
        let dataset = registry.get("g").unwrap();
        let specs = vec![QuerySpec {
            kind: QueryKind::Mean,
            epsilon: 0.5,
        }];
        let out = execute_batch(&dataset, &ledger, &specs, 11, ReleaseMode::Raw).unwrap();
        let mut rng = seeded(child_seed(11, 0));
        let direct = estimate_mean(
            &mut rng,
            &dataset.columns.read().unwrap()[0],
            Epsilon::new(0.5).unwrap(),
            DEFAULT_BETA,
        )
        .unwrap();
        match &out[0] {
            QueryOutcome::Released {
                values,
                epsilon_charged,
                release,
                ..
            } => {
                assert_eq!(values[0].to_bits(), direct.estimate.to_bits());
                assert_eq!(*epsilon_charged, 0.5);
                assert_eq!(*release, ReleaseInfo::Raw);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exhaustion_refuses_deterministically_mid_batch() {
        let (registry, _) = gaussian_registry(4_000);
        let dataset = registry.get("g").unwrap();
        let ledger = Ledger::in_memory();
        ledger.register("g", 1.2).unwrap();
        let outcomes = execute_batch(&dataset, &ledger, &batch(), 5, ReleaseMode::Raw).unwrap();
        assert!(matches!(outcomes[0], QueryOutcome::Released { .. }));
        assert!(matches!(outcomes[1], QueryOutcome::Released { .. }));
        match &outcomes[2] {
            QueryOutcome::Refused { refusal, .. } => {
                assert_eq!(refusal.requested, 0.5);
                assert!((refusal.available - 0.2).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_mean_over_columns() {
        let mut rng = seeded(9);
        let columns: Vec<Vec<f64>> = [10.0, -3.0]
            .iter()
            .map(|&mu| Gaussian::new(mu, 1.0).unwrap().sample_vec(&mut rng, 4_000))
            .collect();
        let registry = Registry::new();
        registry.register("mv", columns).unwrap();
        let ledger = Ledger::in_memory();
        ledger.register("mv", 10.0).unwrap();
        let dataset = registry.get("mv").unwrap();
        let specs = vec![QuerySpec {
            kind: QueryKind::MultiMean,
            epsilon: 2.0,
        }];
        let out = execute_batch(&dataset, &ledger, &specs, 1, ReleaseMode::Raw).unwrap();
        match &out[0] {
            QueryOutcome::Released { values, .. } => {
                assert_eq!(values.len(), 2);
                assert!((values[0] - 10.0).abs() < 0.5, "{values:?}");
                assert!((values[1] + 3.0).abs() < 0.5, "{values:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scalar_queries_reject_multivariate_datasets() {
        let registry = Registry::new();
        registry
            .register("mv", vec![vec![1.0; 64], vec![2.0; 64]])
            .unwrap();
        let ledger = Ledger::in_memory();
        ledger.register("mv", 1.0).unwrap();
        let dataset = registry.get("mv").unwrap();
        let specs = vec![QuerySpec {
            kind: QueryKind::Mean,
            epsilon: 0.1,
        }];
        let err = execute_batch(&dataset, &ledger, &specs, 1, ReleaseMode::Raw).unwrap_err();
        assert!(matches!(err, EngineError::BadQuery(_)));
        // Validation happens before any budget moves.
        assert_eq!(ledger.account("mv").unwrap().spent, 0.0);
    }

    #[test]
    fn estimator_failures_surface_per_query_but_still_spend() {
        // 8 records is below MIN_N = 16: the budget is reserved (the
        // mechanism was authorized), then the estimator refuses.
        let registry = Registry::new();
        registry.register("tiny", vec![vec![1.0; 8]]).unwrap();
        let ledger = Ledger::in_memory();
        ledger.register("tiny", 1.0).unwrap();
        let dataset = registry.get("tiny").unwrap();
        let specs = vec![QuerySpec {
            kind: QueryKind::Mean,
            epsilon: 0.25,
        }];
        let out = execute_batch(&dataset, &ledger, &specs, 1, ReleaseMode::Raw).unwrap();
        assert!(matches!(&out[0], QueryOutcome::Failed { .. }), "{out:?}");
        assert_eq!(ledger.account("tiny").unwrap().spent, 0.25);
    }

    #[test]
    fn seeds_follow_the_child_seed_scheme() {
        // Query i's stream is seeded(child_seed(seed, i)) — pin it so
        // the wire contract ("responses reproducible from the request
        // seed") can never silently drift from DESIGN.md §1.1.
        let mut a = seeded(child_seed(42, 1));
        let mut b = seeded(child_seed(42, 1));
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
