//! # updp-serve — the privacy-budget-accounted estimation service
//!
//! The deployment face of the universal private estimators (Dong &
//! Yi, PODS 2023): a long-lived HTTP/1.1 + JSON process over
//! `std::net::TcpListener` — entirely first-party, because the build
//! environment is offline — that owns datasets and meters their
//! privacy budgets across queries. DESIGN.md §6 is the contract;
//! the pieces:
//!
//! * [`registry`] — sharded in-memory dataset registry
//!   (register/append/flush/drop, stable ids) handing out immutable
//!   `Arc<PreparedDataset>` snapshots whose sorted/discretized
//!   artifacts are cached across queries; appends coalesce in a
//!   per-dataset delta log (DESIGN.md §8) and publish successor
//!   snapshots with merge-maintained caches;
//! * [`ledger`] — the ε accountant: atomic per-query reservation
//!   under basic composition, structured refusals on exhaustion, and
//!   a persisted snapshot so restarts cannot replay budget;
//! * [`engine`] — batched queries dispatched **by estimator name**
//!   through the workspace [`updp_statistical::Estimator`] trait:
//!   the five universal estimators plus every Table 1 baseline
//!   (`kv18`, `coinpress`, `dl09`, …, assumptions echoed on the
//!   wire), executed concurrently through `updp_core::parallel` with
//!   the §1.1 child-seed scheme (bit-reproducible given the request
//!   seed), with the hardened snapping release mode on by default;
//! * [`http`] / [`wire`] — the first-party HTTP codec (blocking and
//!   incremental parsers sharing one set of framing rules) and the
//!   JSON wire schema (shared `updp_core::json` implementation);
//! * [`server`] / [`poll`] — routing plus the sharded epoll reactor
//!   (DESIGN.md §10): `--workers` event-loop shards over non-blocking
//!   sockets, bounded write queues with structured 503 backpressure,
//!   and event-driven shutdown; [`poll`] is the one audited unsafe
//!   module (the raw epoll syscall shim);
//! * [`client`] — the blocking client used by `serve-client`,
//!   `loadgen`, and the e2e tests;
//! * [`report`] — the `BENCH_serve.json` load-test report schema;
//! * `metrics` — the flight recorder (DESIGN.md §11): per-shard
//!   reactor counters, per-endpoint latency histograms, per-estimator
//!   engine timings and per-dataset ε gauges over [`updp_obs`],
//!   exposed at `GET /v1/metrics` (Prometheus text or JSON) with a
//!   bounded per-shard request trace at `GET /v1/trace`. Strictly
//!   observe-only: released bytes are bit-identical with metrics on
//!   or off.
//!
//! Binaries: `updp-serve` (the server), `serve-client` (scripted
//! queries), `loadgen` (throughput/latency measurement).

#![warn(missing_docs)]
// `deny` rather than `forbid`: the one audited exception is the epoll
// syscall shim ([`poll`]), which opts back in at module level with
// `// SAFETY:` comments on every unsafe block (updp-lint R4 enforces
// the comments). Everything else in the crate still refuses unsafe.
#![deny(unsafe_code)]

pub mod client;
pub mod engine;
pub mod http;
pub mod ledger;
pub(crate) mod metrics;
pub mod poll;
pub(crate) mod reactor;
pub mod registry;
pub mod report;
pub mod server;
pub mod wire;

pub use engine::{EstimatorCatalog, QueryOutcome, QuerySpec, ReleaseMode};
pub use ledger::Ledger;
pub use registry::{FlushPolicy, Registry};
pub use server::{DrainSummary, Server, ServerConfig};
