//! # updp-serve — the privacy-budget-accounted estimation service
//!
//! The deployment face of the universal private estimators (Dong &
//! Yi, PODS 2023): a long-lived HTTP/1.1 + JSON process over
//! `std::net::TcpListener` — entirely first-party, because the build
//! environment is offline — that owns datasets and meters their
//! privacy budgets across queries. DESIGN.md §6 is the contract;
//! the pieces:
//!
//! * [`registry`] — sharded in-memory dataset registry
//!   (register/append/flush/drop, stable ids) handing out immutable
//!   `Arc<PreparedDataset>` snapshots whose sorted/discretized
//!   artifacts are cached across queries; appends coalesce in a
//!   per-dataset delta log (DESIGN.md §8) and publish successor
//!   snapshots with merge-maintained caches;
//! * [`ledger`] — the ε accountant: atomic per-query reservation
//!   under basic composition, structured refusals on exhaustion, and
//!   a persisted snapshot so restarts cannot replay budget;
//! * [`engine`] — batched queries dispatched **by estimator name**
//!   through the workspace [`updp_statistical::Estimator`] trait:
//!   the five universal estimators plus every Table 1 baseline
//!   (`kv18`, `coinpress`, `dl09`, …, assumptions echoed on the
//!   wire), executed concurrently through `updp_core::parallel` with
//!   the §1.1 child-seed scheme (bit-reproducible given the request
//!   seed), with the hardened snapping release mode on by default;
//! * [`http`] / [`wire`] — the first-party HTTP codec and the JSON
//!   wire schema (shared `updp_core::json` implementation);
//! * [`server`] / [`client`] — the serving loop and the blocking
//!   client used by `serve-client`, `loadgen`, and the e2e tests;
//! * [`report`] — the `BENCH_serve.json` load-test report schema.
//!
//! Binaries: `updp-serve` (the server), `serve-client` (scripted
//! queries), `loadgen` (throughput/latency measurement).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod engine;
pub mod http;
pub mod ledger;
pub mod registry;
pub mod report;
pub mod server;
pub mod wire;

pub use engine::{EstimatorCatalog, QueryOutcome, QuerySpec, ReleaseMode};
pub use ledger::Ledger;
pub use registry::{FlushPolicy, Registry};
pub use server::Server;
