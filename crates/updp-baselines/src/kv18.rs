//! [KV18] Karwa–Vadhan-style pure-DP Gaussian estimators (A1 + A2 + A3).
//!
//! The strongest prior pure-DP Gaussian mean/variance estimators. Both
//! are two-stage histogram constructions and *require* the assumed bounds
//! as algorithmic inputs:
//!
//! * **variance**: histogram the pairwise differences on a *log₂ scale*
//!   over `[σ_min, σ_max]`, take the noisy argmax bin — a factor-2
//!   approximation `σ̂`; refine with a clipped second-moment release.
//! * **mean**: histogram `[−R, R]` into width-`σ̂` bins, take the noisy
//!   argmax as a coarse location, then release a clipped Laplace mean
//!   around it.
//!
//! Sample complexity `Õ((1/ε)·log(R/σ_min) + σ²/α² + σ/(εα))` — the
//! `log R/σ_min` term is the price of A1/A2 that Theorem 4.6 removes.

use rand::Rng;
use updp_core::clipped_mean::clipped_mean;
use updp_core::error::{ensure_finite, ensure_nonempty, Result, UpdpError};
use updp_core::laplace::sample_laplace;
use updp_core::privacy::Epsilon;

/// Upper limit on histogram bins; beyond this the assumed `R/σ_min` ratio
/// is so extreme the baseline is anyway useless.
const MAX_BINS: usize = 1 << 22;

/// Noisy-argmax over histogram counts (each count gets `Lap(2/ε)`; one
/// record moves at most two counts by one, so this is ε-DP).
fn noisy_argmax<R: Rng + ?Sized>(rng: &mut R, counts: &[usize], epsilon: Epsilon) -> usize {
    let mut best = 0usize;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &c) in counts.iter().enumerate() {
        let v = c as f64 + sample_laplace(rng, 2.0 / epsilon.get());
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// [KV18]-style ε-DP Gaussian σ estimate via a log-scale histogram over
/// the *assumed* `[sigma_min, sigma_max]` (assumption A2).
pub fn kv18_sigma<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    sigma_min: f64,
    sigma_max: f64,
    epsilon: Epsilon,
) -> Result<f64> {
    ensure_nonempty(data)?;
    ensure_finite(data, "kv18_sigma input")?;
    if !(sigma_min > 0.0 && sigma_max > sigma_min && sigma_max.is_finite()) {
        return Err(UpdpError::InvalidParameter {
            name: "sigma bounds",
            reason: format!("need 0 < sigma_min < sigma_max, got [{sigma_min}, {sigma_max}]"),
        });
    }
    // Pairwise differences: (X − X′)/√2 ~ N(0, σ²).
    let diffs: Vec<f64> = data
        .chunks_exact(2)
        .map(|p| (p[0] - p[1]) / std::f64::consts::SQRT_2)
        .collect();
    if diffs.is_empty() {
        return Err(UpdpError::InsufficientData {
            required: 2,
            actual: data.len(),
            context: "kv18_sigma pairing",
        });
    }
    let lo_bin = sigma_min.log2().floor() as i64 - 1;
    let hi_bin = sigma_max.log2().ceil() as i64 + 1;
    let nbins = (hi_bin - lo_bin + 1) as usize;
    let mut counts = vec![0usize; nbins];
    for &d in &diffs {
        let mag = d.abs().max(sigma_min / 4.0);
        let b = (mag.log2().floor() as i64).clamp(lo_bin, hi_bin);
        counts[(b - lo_bin) as usize] += 1;
    }
    let b = noisy_argmax(rng, &counts, epsilon);
    // |N(0, σ²)| concentrates in bins around log₂ σ; the argmax bin's
    // upper edge is a reliable ~2-approximation of σ.
    Ok(2f64
        .powi((lo_bin + b as i64 + 1) as i32)
        .clamp(sigma_min, sigma_max))
}

/// [KV18]-style ε-DP Gaussian mean under A1 (`μ ∈ [−r, r]`) given a
/// (possibly rough) σ estimate.
pub fn kv18_mean_given_sigma<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    r: f64,
    sigma: f64,
    epsilon: Epsilon,
) -> Result<f64> {
    ensure_nonempty(data)?;
    ensure_finite(data, "kv18_mean input")?;
    if !(r.is_finite() && r > 0.0 && sigma.is_finite() && sigma > 0.0) {
        return Err(UpdpError::InvalidParameter {
            name: "r/sigma",
            reason: "must be finite and positive".into(),
        });
    }
    let nbins_f = (2.0 * r / sigma).ceil() + 2.0;
    if nbins_f > MAX_BINS as f64 {
        return Err(UpdpError::InvalidParameter {
            name: "r/sigma",
            reason: format!("histogram would need {nbins_f} bins (> {MAX_BINS})"),
        });
    }
    let nbins = nbins_f as usize;
    let half = epsilon.scale(0.5);
    // Stage 1 (ε/2): coarse location by noisy-argmax histogram.
    let mut counts = vec![0usize; nbins];
    for &x in data {
        let b = (((x + r) / sigma).floor() as i64).clamp(0, nbins as i64 - 1) as usize;
        counts[b] += 1;
    }
    let b = noisy_argmax(rng, &counts, half);
    let center = -r + (b as f64 + 0.5) * sigma;
    // Stage 2 (ε/2): clipped Laplace mean around the located bin.
    let n = data.len() as f64;
    let halfwidth = sigma * (2.0 * (2.0 * n).ln()).sqrt() + 2.0 * sigma;
    let (lo, hi) = (center - halfwidth, center + halfwidth);
    let mean = clipped_mean(data, lo, hi)?;
    Ok(mean + sample_laplace(rng, (hi - lo) / (half.get() * n)))
}

/// Full [KV18] pipeline: σ from A2 bounds (ε/2), then the mean under A1
/// (ε/2). Requires A3 (Gaussian data) for its utility guarantee.
pub fn kv18_gaussian_mean<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    r: f64,
    sigma_min: f64,
    sigma_max: f64,
    epsilon: Epsilon,
) -> Result<f64> {
    let half = epsilon.scale(0.5);
    let sigma = kv18_sigma(rng, data, sigma_min, sigma_max, half)?;
    kv18_mean_given_sigma(rng, data, r, sigma, half)
}

/// [KV18]-style ε-DP Gaussian variance: log-histogram coarse estimate
/// (ε/2), then a clipped release of the paired second moment (ε/2).
pub fn kv18_gaussian_variance<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    sigma_min: f64,
    sigma_max: f64,
    epsilon: Epsilon,
) -> Result<f64> {
    let half = epsilon.scale(0.5);
    let sigma = kv18_sigma(rng, data, sigma_min, sigma_max, half)?;
    // Refine: Z = (X − X′)²/2 has mean σ²; clip to [0, c·σ̂²·log n].
    let z: Vec<f64> = data
        .chunks_exact(2)
        .map(|p| (p[0] - p[1]) * (p[0] - p[1]) / 2.0)
        .collect();
    let n = data.len() as f64;
    let cap = 4.0 * sigma * sigma * (2.0 * n).ln();
    let mean = clipped_mean(&z, 0.0, cap)?;
    Ok((mean + sample_laplace(rng, cap / (half.get() * z.len() as f64))).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;
    use updp_dist::{ContinuousDistribution, Gaussian};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn sigma_estimate_is_factor_two() {
        let g = Gaussian::new(0.0, 3.0).unwrap();
        let mut ok = 0;
        for seed in 0..50 {
            let mut rng = seeded(seed);
            let data = g.sample_vec(&mut rng, 10_000);
            let s = kv18_sigma(&mut rng, &data, 0.01, 1000.0, eps(1.0)).unwrap();
            if (1.0..=12.0).contains(&s) {
                ok += 1;
            }
        }
        assert!(ok >= 45, "sigma within factor ~4 only {ok}/50");
    }

    #[test]
    fn mean_accurate_under_assumptions() {
        let g = Gaussian::new(7.0, 2.0).unwrap();
        let mut rng = seeded(1);
        let data = g.sample_vec(&mut rng, 50_000);
        let m = kv18_gaussian_mean(&mut rng, &data, 100.0, 0.1, 100.0, eps(1.0)).unwrap();
        assert!((m - 7.0).abs() < 0.5, "mean {m}");
    }

    #[test]
    fn mean_fails_when_a1_violated() {
        // μ = 500 outside [−100, 100]: histogram pins at the edge.
        let g = Gaussian::new(500.0, 1.0).unwrap();
        let mut rng = seeded(2);
        let data = g.sample_vec(&mut rng, 20_000);
        let m = kv18_gaussian_mean(&mut rng, &data, 100.0, 0.1, 100.0, eps(1.0)).unwrap();
        assert!((m - 500.0).abs() > 100.0, "should be badly biased, got {m}");
    }

    #[test]
    fn variance_accurate_under_assumptions() {
        let g = Gaussian::new(-3.0, 4.0).unwrap();
        let mut rng = seeded(3);
        let data = g.sample_vec(&mut rng, 50_000);
        let v = kv18_gaussian_variance(&mut rng, &data, 0.1, 1000.0, eps(1.0)).unwrap();
        assert!((v - 16.0).abs() / 16.0 < 0.3, "variance {v}");
    }

    #[test]
    fn variance_suffers_with_loose_bounds() {
        // σ = 1 but σ_min = 10: the clamp floors the estimate at 100ish.
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let mut rng = seeded(4);
        let data = g.sample_vec(&mut rng, 20_000);
        let s = kv18_sigma(&mut rng, &data, 10.0, 1000.0, eps(1.0)).unwrap();
        assert!(s >= 10.0, "clamped sigma {s}");
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = seeded(5);
        let data = vec![0.0; 100];
        assert!(kv18_sigma(&mut rng, &data, 0.0, 1.0, eps(1.0)).is_err());
        assert!(kv18_sigma(&mut rng, &data, 2.0, 1.0, eps(1.0)).is_err());
        assert!(kv18_mean_given_sigma(&mut rng, &data, -1.0, 1.0, eps(1.0)).is_err());
        // R/σ too extreme for the histogram.
        assert!(kv18_mean_given_sigma(&mut rng, &data, 1e12, 1e-12, eps(1.0)).is_err());
    }
}
