//! # updp-baselines — the prior estimators of Table 1
//!
//! Every comparator the paper measures itself against, implemented from
//! the original constructions (with pure-DP noise substitutions recorded
//! in DESIGN.md where the originals use CDP/zCDP):
//!
//! | Module | Prior work | Assumptions | Privacy |
//! |---|---|---|---|
//! | [`nonprivate`] | textbook estimators | — | none |
//! | [`naive_clip`] | folklore clipped Laplace | A1 | ε-DP |
//! | [`kv18`] | Karwa–Vadhan histograms | A1, A2, A3 | ε-DP |
//! | [`coinpress`] | KLSU19/BDKU20 iterative | A1, A2 | ε-DP (Laplace variant) |
//! | [`ksu20`] | heavy-tailed truncated mean | A1, A2 | ε-DP |
//! | [`bs19`] | trimmed mean, smooth sensitivity | A1 | ε-DP-flavored (see module docs) |
//! | [`dl09`] | propose-test-release IQR | none (universal!) | **(ε, δ)-DP only** |
//!
//! The experiments in `updp-experiments` run each of these against the
//! universal estimators on workloads that satisfy — and that violate —
//! the assumptions each baseline needs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bs19;
pub mod catalog;
pub mod coinpress;
pub mod dl09;
pub mod ksu20;
pub mod kv18;
pub mod naive_clip;
pub mod nonprivate;

pub use bs19::{bs19_trimmed_mean, bs19_trimmed_mean_view};
pub use catalog::{
    baseline_estimators, Bs19TrimmedMean, CoinPressMean, CoinPressVariance,
    Dl09Iqr as Dl09Estimator, Ksu20Mean, Kv18Mean, Kv18Variance, NaiveClipMean, NonPrivateIqr,
    NonPrivateMean, NonPrivateVariance,
};
pub use coinpress::{coinpress_mean, coinpress_variance, DEFAULT_STEPS};
pub use dl09::{dl09_iqr, dl09_iqr_view, Dl09Iqr};
pub use ksu20::ksu20_mean;
pub use kv18::{kv18_gaussian_mean, kv18_gaussian_variance, kv18_mean_given_sigma, kv18_sigma};
pub use naive_clip::naive_clipped_mean;
pub use nonprivate::{sample_iqr, sample_iqr_view, sample_mean, sample_midrange, sample_variance};
