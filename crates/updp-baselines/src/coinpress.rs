//! CoinPress-style iterative Gaussian estimators ([KLSU19]/[BDKU20],
//! A1 + A2), in a pure-DP Laplace variant.
//!
//! The published CoinPress runs under zCDP with Gaussian noise; following
//! the paper's own convention for such comparisons (footnote 7: a CDP
//! result "leads to a result under pure-DP by changing a distribution of
//! noise"), we swap in Laplace noise and split ε evenly across the
//! iterations. Structure is identical: start from the assumed interval
//! `[−R, R]`, repeatedly (clip → noisy mean → recenter and shrink to a
//! confidence interval of width `O(σ)`), which removes the `R` dependence
//! *geometrically* — but the starting interval, iteration count, and
//! shrink width all require the A1/A2 bounds the universal estimator does
//! without.

use rand::Rng;
use updp_core::clipped_mean::clipped_mean;
use updp_core::error::{ensure_finite, ensure_nonempty, Result, UpdpError};
use updp_core::laplace::sample_laplace;
use updp_core::privacy::Epsilon;

/// Default number of clip-and-shrink iterations (CoinPress uses t ≤ 10;
/// 2–4 captures nearly all the gain).
pub const DEFAULT_STEPS: usize = 4;

/// Pure-DP CoinPress-style Gaussian mean under A1 (`μ ∈ [−r, r]`) and A2
/// (`σ` known up to the given value).
pub fn coinpress_mean<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    r: f64,
    sigma: f64,
    epsilon: Epsilon,
    steps: usize,
) -> Result<f64> {
    ensure_nonempty(data)?;
    ensure_finite(data, "coinpress_mean input")?;
    if !(r.is_finite() && r > 0.0 && sigma.is_finite() && sigma > 0.0) {
        return Err(UpdpError::InvalidParameter {
            name: "r/sigma",
            reason: "must be finite and positive".into(),
        });
    }
    if steps == 0 {
        return Err(UpdpError::InvalidParameter {
            name: "steps",
            reason: "must be at least 1".into(),
        });
    }
    let n = data.len() as f64;
    let eps_t = epsilon.scale(1.0 / steps as f64);
    let mut lo = -r;
    let mut hi = r;
    let mut estimate = 0.0;
    for _ in 0..steps {
        let width = hi - lo;
        let mean = clipped_mean(data, lo, hi)?;
        let noise_scale = width / (eps_t.get() * n);
        estimate = mean + sample_laplace(rng, noise_scale);
        // Shrink: the next interval must contain μ w.h.p. — sampling
        // spread O(σ/√n) + clipping slack O(σ√log n) + noise tail.
        let half = sigma * (2.0 * (4.0 * n).ln()).sqrt()
            + noise_scale * (4.0 * steps as f64).ln()
            + 2.0 * sigma;
        let new_lo = estimate - half;
        let new_hi = estimate + half;
        // Never expand: expansion means noise dominated; stop shrinking.
        if new_hi - new_lo >= width {
            break;
        }
        lo = new_lo;
        hi = new_hi;
    }
    Ok(estimate)
}

/// Pure-DP CoinPress-style Gaussian variance under A2
/// (`σ ∈ [sigma_min, sigma_max]`): iterative shrink on the paired
/// second-moment variable `Z = (X − X′)²/2` whose mean is σ².
pub fn coinpress_variance<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    sigma_min: f64,
    sigma_max: f64,
    epsilon: Epsilon,
    steps: usize,
) -> Result<f64> {
    ensure_nonempty(data)?;
    ensure_finite(data, "coinpress_variance input")?;
    if !(sigma_min > 0.0 && sigma_max > sigma_min && sigma_max.is_finite()) {
        return Err(UpdpError::InvalidParameter {
            name: "sigma bounds",
            reason: format!("need 0 < sigma_min < sigma_max, got [{sigma_min}, {sigma_max}]"),
        });
    }
    if steps == 0 {
        return Err(UpdpError::InvalidParameter {
            name: "steps",
            reason: "must be at least 1".into(),
        });
    }
    let z: Vec<f64> = data
        .chunks_exact(2)
        .map(|p| (p[0] - p[1]) * (p[0] - p[1]) / 2.0)
        .collect();
    if z.is_empty() {
        return Err(UpdpError::InsufficientData {
            required: 2,
            actual: data.len(),
            context: "coinpress_variance pairing",
        });
    }
    let m = z.len() as f64;
    let eps_t = epsilon.scale(1.0 / steps as f64);
    // Z ∈ [0, cap]; Z/σ² is χ²₁-ish, so cap c·σ_max²·log covers w.h.p.
    let mut hi = 4.0 * sigma_max * sigma_max * (4.0 * m).ln();
    let mut estimate = sigma_min * sigma_min;
    for _ in 0..steps {
        let mean = clipped_mean(&z, 0.0, hi)?;
        let noise_scale = hi / (eps_t.get() * m);
        estimate = (mean + sample_laplace(rng, noise_scale)).max(sigma_min * sigma_min);
        let new_hi =
            4.0 * estimate * (4.0 * m).ln() + 4.0 * noise_scale * (4.0 * steps as f64).ln();
        if new_hi >= hi {
            break;
        }
        hi = new_hi;
    }
    Ok(estimate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;
    use updp_dist::{ContinuousDistribution, Gaussian};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn mean_accurate_under_assumptions() {
        let g = Gaussian::new(12.0, 2.0).unwrap();
        let mut rng = seeded(1);
        let data = g.sample_vec(&mut rng, 50_000);
        let m = coinpress_mean(&mut rng, &data, 1e6, 2.0, eps(1.0), DEFAULT_STEPS).unwrap();
        assert!((m - 12.0).abs() < 0.5, "mean {m}");
    }

    #[test]
    fn iterations_beat_single_shot_for_huge_r() {
        // R = 10^8: one-shot noise is enormous; iterating shrinks it.
        let g = Gaussian::new(5.0, 1.0).unwrap();
        let med = |steps: usize, master: u64| -> f64 {
            let mut errs: Vec<f64> = (0..40)
                .map(|s| {
                    let mut rng = seeded(master + s);
                    let data = g.sample_vec(&mut rng, 5_000);
                    let m = coinpress_mean(&mut rng, &data, 1e8, 1.0, eps(0.5), steps).unwrap();
                    (m - 5.0).abs()
                })
                .collect();
            errs.sort_by(f64::total_cmp);
            errs[20]
        };
        let one = med(1, 100);
        let four = med(4, 200);
        assert!(four < one / 10.0, "iterating didn't help: {one} vs {four}");
    }

    #[test]
    fn mean_fails_when_a1_violated() {
        let g = Gaussian::new(1e7, 1.0).unwrap();
        let mut rng = seeded(3);
        let data = g.sample_vec(&mut rng, 20_000);
        let m = coinpress_mean(&mut rng, &data, 100.0, 1.0, eps(1.0), DEFAULT_STEPS).unwrap();
        assert!((m - 1e7).abs() > 1e6, "should be badly biased, got {m}");
    }

    #[test]
    fn variance_accurate_under_assumptions() {
        let g = Gaussian::new(0.0, 3.0).unwrap();
        let mut rng = seeded(4);
        let data = g.sample_vec(&mut rng, 50_000);
        let v = coinpress_variance(&mut rng, &data, 0.01, 100.0, eps(1.0), DEFAULT_STEPS).unwrap();
        assert!((v - 9.0).abs() / 9.0 < 0.3, "variance {v}");
    }

    #[test]
    fn variance_floor_binds_when_a2_wrong() {
        // σ = 0.1 but σ_min = 1: the answer can never go below 1.
        let g = Gaussian::new(0.0, 0.1).unwrap();
        let mut rng = seeded(5);
        let data = g.sample_vec(&mut rng, 20_000);
        let v = coinpress_variance(&mut rng, &data, 1.0, 100.0, eps(1.0), DEFAULT_STEPS).unwrap();
        assert!(v >= 1.0, "floor should bind: {v}");
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = seeded(6);
        let data = vec![0.0; 100];
        assert!(coinpress_mean(&mut rng, &data, 0.0, 1.0, eps(1.0), 4).is_err());
        assert!(coinpress_mean(&mut rng, &data, 1.0, 1.0, eps(1.0), 0).is_err());
        assert!(coinpress_variance(&mut rng, &data, 1.0, 1.0, eps(1.0), 4).is_err());
    }
}
