//! [BS19]-style trimmed-mean estimator (A1 + A2).
//!
//! Bun & Steinke release an m-trimmed mean with noise calibrated to the
//! *smooth sensitivity* of the trimmed mean, under CDP; the paper
//! compares against the pure-DP translation (its footnote 7). We
//! implement the trimmed mean with the standard β-smooth upper bound on
//! its local sensitivity, computed exactly from order-statistic gaps, and
//! Laplace noise scaled by `S(D)/ε`.
//!
//! **Substitution note (DESIGN.md §3.5):** Laplace noise with β-smooth
//! sensitivity gives a slightly weaker formal guarantee than [BS19]'s
//! calibrated noise distributions; the *utility shape* — in particular
//! the `σ²/(ε²α²)` term and the `log(R/σ_min)` dependence of Eq. (7) that
//! the paper's Eq. (8) improves on — is preserved, which is what the
//! `arb-mean` experiment measures. The assumed range enters through the
//! clipping to `[−R, R]` exactly as in [BS19].

use rand::Rng;
use updp_core::clipped_mean::clip;
use updp_core::error::{ensure_finite, ensure_nonempty, Result, UpdpError};
use updp_core::laplace::sample_laplace;
use updp_core::privacy::Epsilon;
use updp_empirical::view::ColumnView;

/// The m-trimmed mean of sorted data: average of `X_{m+1}, …, X_{n−m}`.
fn trimmed_mean(sorted: &[f64], m: usize) -> f64 {
    let n = sorted.len();
    debug_assert!(2 * m < n);
    let slice = &sorted[m..n - m];
    slice.iter().sum::<f64>() / slice.len() as f64
}

/// β-smooth upper bound on the local sensitivity of the m-trimmed mean:
/// `S(D) = max_k e^{−kβ} · LS^{(k)}(D)` with
/// `LS^{(k)} ≤ (k+1)·(X_{(n−m+k+1)} − X_{(m−k)})/(n−2m)` (indices clamped
/// to the clipped range `[−R, R]`).
fn smooth_sensitivity(sorted: &[f64], m: usize, beta_smooth: f64, r: f64) -> f64 {
    let n = sorted.len();
    let width = (n - 2 * m) as f64;
    let at = |i: i64| -> f64 {
        if i < 0 {
            -r
        } else if i >= n as i64 {
            r
        } else {
            sorted[i as usize]
        }
    };
    let mut best = 0.0f64;
    // Terms decay as e^{−kβ}; once k exceeds ~40/β further terms cannot
    // matter because the gap term is bounded by 2R.
    let k_max = ((40.0 / beta_smooth).ceil() as usize).min(n + m);
    for k in 0..=k_max {
        let hi = at((n - m) as i64 + k as i64);
        let lo = at(m as i64 - 1 - k as i64);
        let ls_k = (k + 1) as f64 * (hi - lo) / width;
        let s = (-(k as f64) * beta_smooth).exp() * ls_k;
        best = best.max(s);
    }
    best
}

/// [BS19]-style ε-DP(-flavored) trimmed mean under A1 (`μ ∈ [−r, r]`).
///
/// `trim_frac` is the fraction trimmed from *each* side (default 0.05 in
/// the experiments).
pub fn bs19_trimmed_mean<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    r: f64,
    trim_frac: f64,
    epsilon: Epsilon,
) -> Result<f64> {
    bs19_trimmed_mean_view(rng, &ColumnView::bare(data), r, trim_frac, epsilon)
}

/// [`bs19_trimmed_mean`] over a [`ColumnView`]: the sorted copy comes
/// from the view (cached by serving snapshots), and clipping is
/// applied to the sorted sequence. Clipping to `[−r, r]` is monotone
/// under `total_cmp`, so `clip(sort(D))` and the historical
/// `sort(clip(D))` are the *same* sequence — outputs are bit-identical
/// for the same seed.
pub fn bs19_trimmed_mean_view<R: Rng + ?Sized>(
    rng: &mut R,
    view: &ColumnView<'_>,
    r: f64,
    trim_frac: f64,
    epsilon: Epsilon,
) -> Result<f64> {
    let data = view.data();
    ensure_nonempty(data)?;
    ensure_finite(data, "bs19_trimmed_mean input")?;
    if !(r.is_finite() && r > 0.0) {
        return Err(UpdpError::InvalidParameter {
            name: "r",
            reason: "must be finite and positive".into(),
        });
    }
    if !(trim_frac > 0.0 && trim_frac < 0.5) {
        return Err(UpdpError::InvalidParameter {
            name: "trim_frac",
            reason: format!("must be in (0, 0.5), got {trim_frac}"),
        });
    }
    let n = data.len();
    let m = ((n as f64 * trim_frac).ceil() as usize).max(1);
    if 2 * m >= n {
        return Err(UpdpError::InsufficientData {
            required: 2 * m + 1,
            actual: n,
            context: "BS19 trimming",
        });
    }
    let sorted: Vec<f64> = view.sorted().iter().map(|&x| clip(x, -r, r)).collect();
    let mean = trimmed_mean(&sorted, m);
    let beta_smooth = epsilon.get() / 2.0;
    let s = smooth_sensitivity(&sorted, m, beta_smooth, r);
    Ok(mean + sample_laplace(rng, (2.0 * s / epsilon.get()).max(f64::MIN_POSITIVE)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;
    use updp_dist::{ContinuousDistribution, Gaussian, StudentT};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn trimmed_mean_basics() {
        let sorted = [0.0, 1.0, 2.0, 3.0, 100.0];
        assert!((trimmed_mean(&sorted, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn smooth_sensitivity_small_for_concentrated_data() {
        let sorted: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let s = smooth_sensitivity(&sorted, 50, 0.5, 1e6);
        // Interior gaps are ~1e-3; even with the e^{−kβ} search the bound
        // should stay far below the crude 2R/(n−2m) ≈ 2222.
        assert!(s < 10.0, "smooth sensitivity {s}");
    }

    #[test]
    fn accurate_on_gaussian_under_assumptions() {
        let g = Gaussian::new(4.0, 1.0).unwrap();
        let mut rng = seeded(1);
        let data = g.sample_vec(&mut rng, 50_000);
        let m = bs19_trimmed_mean(&mut rng, &data, 1000.0, 0.05, eps(1.0)).unwrap();
        // Trimming a symmetric distribution is unbiased.
        assert!((m - 4.0).abs() < 0.3, "mean {m}");
    }

    #[test]
    fn robust_to_heavy_tails_given_range() {
        let t = StudentT::new(3.0, 0.0, 1.0).unwrap();
        let mut rng = seeded(2);
        let data = t.sample_vec(&mut rng, 50_000);
        let m = bs19_trimmed_mean(&mut rng, &data, 1e6, 0.05, eps(1.0)).unwrap();
        assert!(m.abs() < 0.5, "mean {m}");
    }

    #[test]
    fn biased_when_mean_outside_range() {
        let g = Gaussian::new(1e5, 1.0).unwrap();
        let mut rng = seeded(3);
        let data = g.sample_vec(&mut rng, 10_000);
        let m = bs19_trimmed_mean(&mut rng, &data, 10.0, 0.05, eps(1.0)).unwrap();
        assert!((m - 1e5).abs() > 1e4, "should be pinned at R: {m}");
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = seeded(4);
        let data = vec![0.0; 100];
        assert!(bs19_trimmed_mean(&mut rng, &data, 0.0, 0.05, eps(1.0)).is_err());
        assert!(bs19_trimmed_mean(&mut rng, &data, 1.0, 0.6, eps(1.0)).is_err());
        assert!(bs19_trimmed_mean(&mut rng, &[1.0, 2.0], 1.0, 0.4, eps(1.0)).is_err());
    }

    #[test]
    fn clip_of_sorted_equals_sort_of_clipped() {
        // The view-based path clips the sorted copy; the historical
        // path sorted the clipped copy. Clipping is monotone under
        // total_cmp, so the sequences must match bit for bit — pin it
        // on data with signed zeros, duplicates, and out-of-range
        // values on both sides.
        let data = [3.5, -9.0, 0.0, -0.0, 9.0, 2.0, -2.0, 2.0, -9.0, 1e-300];
        for r in [1.0, 2.5, 100.0] {
            let historical: Vec<u64> = {
                let mut v: Vec<f64> = data.iter().map(|&x| clip(x, -r, r)).collect();
                v.sort_by(f64::total_cmp);
                v.into_iter().map(f64::to_bits).collect()
            };
            let view_path: Vec<u64> = ColumnView::bare(&data)
                .sorted()
                .iter()
                .map(|&x| clip(x, -r, r).to_bits())
                .collect();
            assert_eq!(view_path, historical, "r = {r}");
        }
    }
}
