//! [DL09] Dwork–Lei propose-test-release IQR ((ε, δ)-DP).
//!
//! The *only* prior universal estimator in Table 1 — but it fundamentally
//! requires `δ > 0`: propose-test-release privately checks whether the
//! sample IQR is *stable* (many records must change before `log(IQR)`
//! leaves its grid cell) and refuses to answer otherwise, and the test
//! itself leaks with probability δ.
//!
//! Following [DL09] §3 ("Scale"), the scale axis is discretized into
//! multiplicative grid cells of width `e^{1/ln n}` — finer grids give
//! better accuracy but fail the stability test more often. The released
//! value is the (deterministic) cell center, so the error is the cell
//! width: a **multiplicative `(1 ± O(1/ln n))`** error, i.e. additive
//! `α ∝ IQR/ln n`, with the ε-dependence entering through the stability
//! margin `ln(1/δ)/ε` that `n` must support. This is exactly the
//! `α ∝ 1/(ε log n)` convergence the paper contrasts with its own
//! `α ∝ 1/(εn)` (Section 1.1.4); the `iqr` experiment measures the gap.

use rand::Rng;
use updp_core::error::{ensure_finite, ensure_nonempty, Result, UpdpError};
use updp_core::laplace::sample_laplace;
use updp_core::privacy::{Delta, Epsilon};
use updp_empirical::view::ColumnView;

/// Outcome of the propose-test-release IQR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dl09Iqr {
    /// The released IQR estimate (the stable grid cell's center).
    pub estimate: f64,
    /// The grid cell width in log-space (`1/ln n`), for diagnostics.
    pub log_cell: f64,
    /// The (noisy) stability distance that passed the test.
    pub stability: f64,
}

/// Number of records that must change before `ln(IQR(D))` can leave
/// `[cell_lo, cell_hi]`: widen the quartile ranks outward one step at a
/// time and find the first step where the implied IQR crosses the cell.
fn stability_distance(sorted: &[f64], cell_lo: f64, cell_hi: f64) -> usize {
    let n = sorted.len();
    let q1 = n / 4;
    let q3 = 3 * n / 4;
    let at = |i: i64| -> f64 {
        let idx = i.clamp(1, n as i64) as usize - 1;
        sorted[idx]
    };
    // Changing s records can move X_{q1} down to X_{q1−s} and X_{q3} up
    // to X_{q3+s} (or inward symmetrically).
    for s in 0..n {
        let si = s as i64;
        let widest = at(q3 as i64 + si) - at(q1 as i64 - si);
        let narrowest = (at(q3 as i64 - si) - at(q1 as i64 + si)).max(0.0);
        let crosses = |v: f64| -> bool {
            if v <= 0.0 {
                return true;
            }
            let lv = v.ln();
            lv < cell_lo || lv > cell_hi
        };
        if crosses(widest) || crosses(narrowest) {
            return s;
        }
    }
    n
}

/// (ε, δ)-DP propose-test-release IQR ([DL09]).
///
/// Returns [`UpdpError::MechanismRefused`] when the stability test fails
/// (the designed-in refusal branch of PTR) and an error for degenerate
/// data whose IQR is zero.
pub fn dl09_iqr<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    epsilon: Epsilon,
    delta: Delta,
) -> Result<Dl09Iqr> {
    dl09_iqr_view(rng, &ColumnView::bare(data), epsilon, delta)
}

/// [`dl09_iqr`] over a [`ColumnView`]: the `total_cmp`-sorted copy
/// comes from the view (cached by serving snapshots), everything else
/// is identical — bit-identical outputs for the same seed.
pub fn dl09_iqr_view<R: Rng + ?Sized>(
    rng: &mut R,
    view: &ColumnView<'_>,
    epsilon: Epsilon,
    delta: Delta,
) -> Result<Dl09Iqr> {
    let data = view.data();
    ensure_nonempty(data)?;
    ensure_finite(data, "dl09_iqr input")?;
    if delta.is_pure() {
        return Err(UpdpError::InvalidParameter {
            name: "delta",
            reason: "propose-test-release fundamentally requires δ > 0".into(),
        });
    }
    let n = data.len();
    if n < 16 {
        return Err(UpdpError::InsufficientData {
            required: 16,
            actual: n,
            context: "DL09 IQR",
        });
    }
    let sorted = view.sorted();
    let q1 = sorted[(n / 4).max(1) - 1];
    let q3 = sorted[(3 * n / 4).max(1) - 1];
    let iqr = q3 - q1;
    if iqr <= 0.0 {
        return Err(UpdpError::MechanismRefused {
            mechanism: "DL09",
            reason: "sample IQR is zero; log-scale grid undefined".into(),
        });
    }

    // Multiplicative grid of cell width 1/ln n in log space; test the two
    // shifted grids (offset 0 and 1/2 cell) and use the first that passes
    // — the standard trick guaranteeing some grid has the value mid-cell.
    let cell = 1.0 / (n as f64).ln();
    let threshold = (1.0 / delta.get()).ln() / epsilon.get();
    for offset in [0.0, 0.5] {
        let idx = (iqr.ln() / cell - offset).floor();
        let lo = (idx + offset) * cell;
        let hi = lo + cell;
        let d = stability_distance(&sorted[..], lo, hi);
        let noisy = d as f64 + sample_laplace(rng, 1.0 / epsilon.get());
        if noisy > threshold {
            return Ok(Dl09Iqr {
                estimate: ((lo + hi) / 2.0).exp(),
                log_cell: cell,
                stability: noisy,
            });
        }
    }
    Err(UpdpError::MechanismRefused {
        mechanism: "DL09",
        reason: format!("stability test failed on both grids (threshold {threshold:.1})"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;
    use updp_dist::{ContinuousDistribution, Gaussian};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn delta() -> Delta {
        Delta::new(1e-6).unwrap()
    }

    #[test]
    fn stability_distance_monotone_intuition() {
        // Tightly clustered quartile gaps ⇒ large stability distance for a
        // wide cell; a razor-thin cell fails immediately.
        let sorted: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let iqr: f64 = 500.0;
        let wide = stability_distance(&sorted, iqr.ln() - 0.5, iqr.ln() + 0.5);
        let thin = stability_distance(&sorted, iqr.ln() - 1e-6, iqr.ln() + 1e-6);
        assert!(wide > 50, "wide cell distance {wide}");
        assert!(thin < 5, "thin cell distance {thin}");
    }

    #[test]
    fn releases_on_large_well_behaved_samples() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let mut releases = 0;
        let mut rel_errs = Vec::new();
        for seed in 0..30 {
            let mut rng = seeded(seed);
            let data = g.sample_vec(&mut rng, 100_000);
            if let Ok(r) = dl09_iqr(&mut rng, &data, eps(1.0), delta()) {
                releases += 1;
                rel_errs.push((r.estimate - g.iqr()).abs() / g.iqr());
            }
        }
        assert!(releases >= 25, "released only {releases}/30");
        rel_errs.sort_by(f64::total_cmp);
        let med = rel_errs[rel_errs.len() / 2];
        // Cell width 1/ln(1e5) ≈ 0.087 ⇒ ~4–9% multiplicative error.
        assert!(med < 0.15, "median relative error {med}");
    }

    #[test]
    fn refuses_on_small_samples() {
        // n = 200: threshold ln(1e6)/ε ≈ 14, but rank slack is ~n/4·cell…
        // stability can't reach it reliably — refusals expected often.
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let mut refusals = 0;
        for seed in 0..30 {
            let mut rng = seeded(100 + seed);
            let data = g.sample_vec(&mut rng, 200);
            if dl09_iqr(&mut rng, &data, eps(0.2), delta()).is_err() {
                refusals += 1;
            }
        }
        assert!(
            refusals >= 10,
            "expected frequent refusals, got {refusals}/30"
        );
    }

    #[test]
    fn rejects_pure_dp_request() {
        let mut rng = seeded(1);
        let data = vec![1.0, 2.0, 3.0, 4.0];
        let err = dl09_iqr(&mut rng, &data, eps(1.0), Delta::ZERO).unwrap_err();
        assert!(matches!(err, UpdpError::InvalidParameter { .. }));
    }

    #[test]
    fn refuses_degenerate_data() {
        let mut rng = seeded(2);
        let data = vec![5.0; 1000];
        let err = dl09_iqr(&mut rng, &data, eps(1.0), delta()).unwrap_err();
        assert!(matches!(err, UpdpError::MechanismRefused { .. }));
    }

    #[test]
    fn resolution_is_the_grid_cell_scaling_as_inverse_log_n() {
        // The released value is a grid-cell center: its guaranteed
        // resolution is the cell width 1/ln n (in log space), so the
        // estimate is within half a cell of the *sample* IQR and the cell
        // only shrinks logarithmically with n.
        let g = Gaussian::new(0.0, 1.0).unwrap();
        for (n, master) in [(25_000usize, 300u64), (100_000, 400)] {
            let mut rng = seeded(master);
            let data = g.sample_vec(&mut rng, n);
            let sample = {
                let mut s = data.clone();
                s.sort_by(f64::total_cmp);
                s[3 * n / 4 - 1] - s[n / 4 - 1]
            };
            let r = dl09_iqr(&mut rng, &data, eps(1.0), delta()).unwrap();
            let expected_cell = 1.0 / (n as f64).ln();
            assert!((r.log_cell - expected_cell).abs() < 1e-12);
            // Cell-center release: within one full cell of the sample IQR
            // in log space (half a cell for the grid that passed).
            let log_err = (r.estimate.ln() - sample.ln()).abs();
            assert!(
                log_err <= r.log_cell,
                "log error {log_err} > cell {}",
                r.log_cell
            );
        }
        // Quadrupling n shrinks the cell only by ln(25k)/ln(100k) ≈ 0.88.
        let ratio = (25_000f64).ln() / (100_000f64).ln();
        assert!(ratio > 0.85, "log-rate sanity");
    }
}
