//! The folklore A1 baseline: clip to the assumed range, add Laplace.
//!
//! `M(D) = ClippedMean(D, [−R, R]) + Lap(2R/(εn))` is ε-DP and is what a
//! practitioner with a range assumption would reach for first. Its error
//! has an *irreducible* `R/(εn)` noise floor — the dependence on the
//! a-priori bound instead of the data's own scale that the paper's
//! instance-optimal estimators eliminate — and an unbounded bias whenever
//! `μ ∉ [−R, R]`, which the `table1` experiment demonstrates.

use rand::Rng;
use updp_core::clipped_mean::clipped_mean;
use updp_core::error::{ensure_finite, Result, UpdpError};
use updp_core::laplace::sample_laplace;
use updp_core::privacy::Epsilon;

/// ε-DP clipped-Laplace mean under assumption A1 (`μ ∈ [−r, r]`).
pub fn naive_clipped_mean<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    r: f64,
    epsilon: Epsilon,
) -> Result<f64> {
    ensure_finite(data, "naive_clipped_mean input")?;
    if !(r.is_finite() && r > 0.0) {
        return Err(UpdpError::InvalidParameter {
            name: "r",
            reason: format!("assumed range bound must be positive, got {r}"),
        });
    }
    let mean = clipped_mean(data, -r, r)?;
    Ok(mean + sample_laplace(rng, 2.0 * r / (epsilon.get() * data.len() as f64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;
    use updp_dist::{ContinuousDistribution, Gaussian};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn accurate_when_assumption_holds() {
        let g = Gaussian::new(3.0, 1.0).unwrap();
        let mut rng = seeded(1);
        let data = g.sample_vec(&mut rng, 50_000);
        let est = naive_clipped_mean(&mut rng, &data, 100.0, eps(1.0)).unwrap();
        assert!((est - 3.0).abs() < 0.2, "est {est}");
    }

    #[test]
    fn biased_when_mean_outside_range() {
        // μ = 1000 but R = 10: the estimate is pinned near 10.
        let g = Gaussian::new(1000.0, 1.0).unwrap();
        let mut rng = seeded(2);
        let data = g.sample_vec(&mut rng, 10_000);
        let est = naive_clipped_mean(&mut rng, &data, 10.0, eps(1.0)).unwrap();
        assert!(
            (est - 10.0).abs() < 1.0,
            "A1 violation should pin at R: {est}"
        );
    }

    #[test]
    fn noise_floor_scales_with_r() {
        // Same data, two Rs: larger R ⇒ visibly larger error spread.
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let spread = |r: f64, master: u64| -> f64 {
            let mut errs = Vec::new();
            for s in 0..60 {
                let mut rng = seeded(master + s);
                let data = g.sample_vec(&mut rng, 200);
                let est = naive_clipped_mean(&mut rng, &data, r, eps(0.1)).unwrap();
                errs.push(est.abs());
            }
            errs.sort_by(f64::total_cmp);
            errs[30]
        };
        let tight = spread(5.0, 100);
        let loose = spread(5_000.0, 200);
        assert!(
            loose > 10.0 * tight,
            "R dependence not visible: {tight} vs {loose}"
        );
    }

    #[test]
    fn rejects_bad_r() {
        let mut rng = seeded(3);
        assert!(naive_clipped_mean(&mut rng, &[1.0], 0.0, eps(1.0)).is_err());
        assert!(naive_clipped_mean(&mut rng, &[1.0], f64::NAN, eps(1.0)).is_err());
    }
}
