//! Non-private textbook estimators (Section 1).
//!
//! The sample mean, variance, and IQR converge at `O(1/√n)` and serve as
//! the no-privacy reference line in every experiment; the mid-range
//! estimator illustrates the introduction's point about
//! distribution-specific estimators (optimal on uniform, terrible on
//! Gaussian).

use updp_core::error::{ensure_finite, ensure_nonempty, Result};
use updp_empirical::view::ColumnView;

/// The sample mean `μ(D) = (1/n) Σ Xᵢ`.
pub fn sample_mean(data: &[f64]) -> Result<f64> {
    ensure_nonempty(data)?;
    ensure_finite(data, "sample_mean")?;
    let mut mean = 0.0;
    for (i, &x) in data.iter().enumerate() {
        mean += (x - mean) / (i + 1) as f64;
    }
    Ok(mean)
}

/// The (biased, 1/n) sample variance `σ²(D) = (1/n) Σ (Xᵢ − μ(D))²` —
/// the paper's definition.
pub fn sample_variance(data: &[f64]) -> Result<f64> {
    let mean = sample_mean(data)?;
    Ok(data.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / data.len() as f64)
}

/// The sample IQR `X_{3n/4} − X_{n/4}` (1-based order statistics, the
/// paper's indexing).
pub fn sample_iqr(data: &[f64]) -> Result<f64> {
    sample_iqr_view(&ColumnView::bare(data))
}

/// [`sample_iqr`] over a [`ColumnView`] (the sorted copy comes from
/// the view; identical values).
pub fn sample_iqr_view(view: &ColumnView<'_>) -> Result<f64> {
    let data = view.data();
    ensure_nonempty(data)?;
    ensure_finite(data, "sample_iqr")?;
    let sorted = view.sorted();
    let n = sorted.len();
    let idx = |tau: usize| sorted[tau.clamp(1, n) - 1];
    Ok(idx(3 * n / 4) - idx(n / 4))
}

/// The mid-range estimator `(X₍₁₎ + X₍ₙ₎)/2`.
pub fn sample_midrange(data: &[f64]) -> Result<f64> {
    ensure_nonempty(data)?;
    ensure_finite(data, "sample_midrange")?;
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in data {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert!((sample_mean(&d).unwrap() - 2.5).abs() < 1e-12);
        assert!((sample_variance(&d).unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn iqr_on_known_data() {
        let d: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        // X_{75} − X_{25} = 50.
        assert!((sample_iqr(&d).unwrap() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn midrange_basics() {
        let d = [-3.0, 0.0, 9.0];
        assert!((sample_midrange(&d).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_reject_empty_and_nan() {
        assert!(sample_mean(&[]).is_err());
        assert!(sample_variance(&[f64::NAN]).is_err());
        assert!(sample_iqr(&[]).is_err());
        assert!(sample_midrange(&[f64::INFINITY]).is_err());
    }
}
