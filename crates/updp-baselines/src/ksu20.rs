//! [KSU20]-style heavy-tailed mean estimator (A1 + A2).
//!
//! For `P` with k-th central moment `μ_k ≤ μ̄_k` (assumed!) and
//! `μ ∈ [−R, R]` (assumed!):
//!
//! 1. coarse location: noisy-argmax histogram of `[−R, R]` with bins of
//!    width `2τ`, where `τ = c·(εn·μ̄_k)^{1/k}` is the truncation radius
//!    the moment bound justifies;
//! 2. clip to `[μ₀ − 2τ, μ₀ + 2τ]` and release a Laplace mean.
//!
//! Its privacy term matches Theorem 4.9 *only if* `μ̄_k` is a
//! constant-factor approximation of the true `μ_k` — which, as the paper
//! stresses, is unobtainable (even non-privately) when `μ_{2k} = ∞`. The
//! `heavy-mean` experiment sweeps the misspecification factor to show the
//! resulting degradation, while the universal estimator needs no `μ̄_k`
//! at all.

use rand::Rng;
use updp_core::clipped_mean::clipped_mean;
use updp_core::error::{ensure_finite, ensure_nonempty, Result, UpdpError};
use updp_core::laplace::sample_laplace;
use updp_core::privacy::Epsilon;

/// Upper limit on histogram bins (see `kv18`).
const MAX_BINS: usize = 1 << 22;

/// [KSU20]-style ε-DP heavy-tailed mean under A1 (`μ ∈ [−r, r]`) and A2
/// (`μ_k ≤ mu_k_bound` for the given `k`).
pub fn ksu20_mean<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    r: f64,
    k: u32,
    mu_k_bound: f64,
    epsilon: Epsilon,
) -> Result<f64> {
    ensure_nonempty(data)?;
    ensure_finite(data, "ksu20_mean input")?;
    if !(r.is_finite() && r > 0.0) {
        return Err(UpdpError::InvalidParameter {
            name: "r",
            reason: "must be finite and positive".into(),
        });
    }
    if k < 2 {
        return Err(UpdpError::InvalidParameter {
            name: "k",
            reason: "moment order must be ≥ 2".into(),
        });
    }
    if !(mu_k_bound.is_finite() && mu_k_bound > 0.0) {
        return Err(UpdpError::InvalidParameter {
            name: "mu_k_bound",
            reason: "must be finite and positive".into(),
        });
    }
    let n = data.len() as f64;
    let eps = epsilon.get();
    // Truncation radius justified by the assumed moment bound.
    let tau = (2.0 * eps * n * mu_k_bound).powf(1.0 / k as f64);
    let nbins_f = (r / tau).ceil() + 2.0;
    if nbins_f > MAX_BINS as f64 {
        return Err(UpdpError::InvalidParameter {
            name: "r/tau",
            reason: format!("histogram would need {nbins_f} bins (> {MAX_BINS})"),
        });
    }
    let half = epsilon.scale(0.5);

    // Stage 1 (ε/2): coarse location over [−R−τ, R+τ] in 2τ bins.
    let nbins = nbins_f as usize;
    let mut counts = vec![0usize; nbins];
    for &x in data {
        let b = (((x + r + tau) / (2.0 * tau)).floor() as i64).clamp(0, nbins as i64 - 1) as usize;
        counts[b] += 1;
    }
    let mut best = 0usize;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &c) in counts.iter().enumerate() {
        let v = c as f64 + sample_laplace(rng, 2.0 / half.get());
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    let center = -r - tau + (best as f64 + 0.5) * 2.0 * tau;

    // Stage 2 (ε/2): clipped Laplace mean around the located bin.
    let (lo, hi) = (center - 2.0 * tau, center + 2.0 * tau);
    let mean = clipped_mean(data, lo, hi)?;
    Ok(mean + sample_laplace(rng, (hi - lo) / (half.get() * n)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;
    use updp_dist::{ContinuousDistribution, Pareto, StudentT};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn accurate_with_true_moment_bound() {
        let t = StudentT::new(5.0, 3.0, 1.0).unwrap();
        let mu2 = t.central_moment(2);
        let mut rng = seeded(1);
        let data = t.sample_vec(&mut rng, 50_000);
        let m = ksu20_mean(&mut rng, &data, 100.0, 2, mu2, eps(0.5)).unwrap();
        assert!((m - 3.0).abs() < 0.5, "mean {m}");
    }

    #[test]
    fn pareto_with_true_bound() {
        let p = Pareto::new(1.0, 3.0).unwrap();
        let mu2 = p.central_moment(2);
        let mut rng = seeded(2);
        let data = p.sample_vec(&mut rng, 50_000);
        let m = ksu20_mean(&mut rng, &data, 100.0, 2, mu2, eps(0.5)).unwrap();
        assert!((m - 1.5).abs() < 0.5, "mean {m}");
    }

    #[test]
    fn overestimated_bound_inflates_noise() {
        let t = StudentT::new(5.0, 0.0, 1.0).unwrap();
        let mu2 = t.central_moment(2);
        let med = |bound: f64, master: u64| -> f64 {
            let mut errs: Vec<f64> = (0..40)
                .map(|s| {
                    let mut rng = seeded(master + s);
                    let data = t.sample_vec(&mut rng, 2_000);
                    let m = ksu20_mean(&mut rng, &data, 1000.0, 2, bound, eps(0.2)).unwrap();
                    m.abs()
                })
                .collect();
            errs.sort_by(f64::total_cmp);
            errs[20]
        };
        let honest = med(mu2, 100);
        let inflated = med(mu2 * 1e6, 200);
        assert!(
            inflated > 5.0 * honest,
            "misspecification not visible: {honest} vs {inflated}"
        );
    }

    #[test]
    fn fails_when_a1_violated() {
        let t = StudentT::new(5.0, 1e6, 1.0).unwrap();
        let mut rng = seeded(3);
        let data = t.sample_vec(&mut rng, 20_000);
        let m = ksu20_mean(&mut rng, &data, 100.0, 2, 2.0, eps(0.5)).unwrap();
        assert!((m - 1e6).abs() > 1e5, "should be badly biased: {m}");
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = seeded(4);
        let data = vec![0.0; 100];
        assert!(ksu20_mean(&mut rng, &data, 0.0, 2, 1.0, eps(1.0)).is_err());
        assert!(ksu20_mean(&mut rng, &data, 1.0, 1, 1.0, eps(1.0)).is_err());
        assert!(ksu20_mean(&mut rng, &data, 1.0, 2, 0.0, eps(1.0)).is_err());
    }
}
