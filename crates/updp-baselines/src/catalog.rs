//! The Table 1 comparators behind the workspace-wide
//! [`Estimator`] trait.
//!
//! Every baseline becomes a first-class, name-addressable estimator —
//! servable over the wire, dispatchable by the experiment trial runner
//! — with its required assumptions (`A1` = a-priori mean range, `A2` =
//! variance/moment bounds, `A3` = distribution family) and its privacy
//! guarantee carried as metadata. Each `estimate` implementation calls
//! the module's free function with the **same arguments in the same
//! order**, so trait dispatch is bit-identical to a direct call on the
//! same seed (pinned by the workspace equivalence suite).
//!
//! # Hardened-release sensitivity proxies
//!
//! [`Release::sensitivities`] feeds the serving layer's snapped
//! re-release. For the baselines the proxies are derived from the
//! *assumed* public parameters (`2r/n` for A1-clipped means, the
//! `σ_max`-capped pair-moment scale for the variance estimators, the
//! assumed-moment truncation radius for [KSU20]) or from the released
//! value itself ([DL09]'s grid cell — post-processing of a DP output).
//! They mirror each mechanism's own final-release noise scale, so
//! hardening costs a constant factor, never a change of error regime.
//! The non-private estimators report `0.0` (no meaningful scale;
//! hardened consumers clamp to a floor).

use crate::bs19::bs19_trimmed_mean_view;
use crate::coinpress::{coinpress_mean, coinpress_variance};
use crate::dl09::dl09_iqr_view;
use crate::ksu20::ksu20_mean;
use crate::kv18::{kv18_gaussian_mean, kv18_gaussian_variance};
use crate::naive_clip::naive_clipped_mean;
use crate::nonprivate::{sample_iqr_view, sample_mean, sample_variance};
use rand::RngCore;
use updp_core::error::{Result, UpdpError};
use updp_core::privacy::Delta;
use updp_statistical::estimator::{
    check_declared, scalar_column, DataView, EstimateParams, Estimator, ParamSpec, Release,
};

/// Validates an f64-encoded positive integer parameter (`steps`, `k`).
fn as_count(name: &'static str, value: f64, min: f64, max: f64) -> Result<u64> {
    // updp-lint: allow(R5, reason="fract() == 0.0 is the exact integrality test; any rounding error means the value is genuinely not an integer")
    if !(value.is_finite() && value.fract() == 0.0 && value >= min && value <= max) {
        return Err(UpdpError::InvalidParameter {
            name,
            reason: format!("must be an integer in [{min}, {max}], got {value}"),
        });
    }
    Ok(value as u64)
}

/// [KV18] Gaussian mean under A1 + A2 + A3.
#[derive(Debug, Clone, Copy, Default)]
pub struct Kv18Mean;

/// [`Kv18Mean`]'s parameter table.
pub const KV18_MEAN_PARAMS: &[ParamSpec] = &[
    ParamSpec::required("r", "assumed mean range bound: μ ∈ [−r, r] (A1)"),
    ParamSpec::required("sigma_min", "assumed lower σ bound (A2)"),
    ParamSpec::required("sigma_max", "assumed upper σ bound (A2)"),
];

impl Estimator for Kv18Mean {
    fn name(&self) -> &'static str {
        "kv18"
    }

    fn statistic(&self) -> &'static str {
        "mean"
    }

    fn assumptions(&self) -> &'static [&'static str] {
        &["A1", "A2", "A3"]
    }

    fn params(&self) -> &'static [ParamSpec] {
        KV18_MEAN_PARAMS
    }

    fn estimate(
        &self,
        rng: &mut dyn RngCore,
        view: &DataView<'_>,
        params: &EstimateParams,
    ) -> Result<Release> {
        let col = scalar_column(view, "kv18")?;
        let r = params.resolve(&KV18_MEAN_PARAMS[0])?;
        let smin = params.resolve(&KV18_MEAN_PARAMS[1])?;
        let smax = params.resolve(&KV18_MEAN_PARAMS[2])?;
        let est = kv18_gaussian_mean(rng, col.data(), r, smin, smax, params.epsilon)?;
        Ok(Release::scalar(est, 2.0 * r / col.len() as f64))
    }
}

/// [KV18] Gaussian variance under A2 + A3.
#[derive(Debug, Clone, Copy, Default)]
pub struct Kv18Variance;

/// [`Kv18Variance`]'s parameter table.
pub const KV18_VARIANCE_PARAMS: &[ParamSpec] = &[
    ParamSpec::required("sigma_min", "assumed lower σ bound (A2)"),
    ParamSpec::required("sigma_max", "assumed upper σ bound (A2)"),
];

impl Estimator for Kv18Variance {
    fn name(&self) -> &'static str {
        "kv18_variance"
    }

    fn statistic(&self) -> &'static str {
        "variance"
    }

    fn assumptions(&self) -> &'static [&'static str] {
        &["A2", "A3"]
    }

    fn params(&self) -> &'static [ParamSpec] {
        KV18_VARIANCE_PARAMS
    }

    fn estimate(
        &self,
        rng: &mut dyn RngCore,
        view: &DataView<'_>,
        params: &EstimateParams,
    ) -> Result<Release> {
        let col = scalar_column(view, "kv18_variance")?;
        let smin = params.resolve(&KV18_VARIANCE_PARAMS[0])?;
        let smax = params.resolve(&KV18_VARIANCE_PARAMS[1])?;
        let n = col.len() as f64;
        let est = kv18_gaussian_variance(rng, col.data(), smin, smax, params.epsilon)?;
        // σ_max-capped pair-moment clip scale over the pair count.
        let pairs = (n / 2.0).max(1.0);
        let cap = 4.0 * smax * smax * (2.0 * n).max(2.0).ln();
        Ok(Release::scalar(est, cap / pairs))
    }
}

/// CoinPress-style iterative Gaussian mean under A1 + A2.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoinPressMean;

/// [`CoinPressMean`]'s parameter table.
pub const COINPRESS_MEAN_PARAMS: &[ParamSpec] = &[
    ParamSpec::required("r", "assumed mean range bound: μ ∈ [−r, r] (A1)"),
    ParamSpec::required("sigma", "assumed σ scale (A2)"),
    ParamSpec::optional("steps", 4.0, "clip-and-shrink iterations"),
];

impl Estimator for CoinPressMean {
    fn name(&self) -> &'static str {
        "coinpress"
    }

    fn statistic(&self) -> &'static str {
        "mean"
    }

    fn assumptions(&self) -> &'static [&'static str] {
        &["A1", "A2"]
    }

    fn params(&self) -> &'static [ParamSpec] {
        COINPRESS_MEAN_PARAMS
    }

    fn validate_params(&self, params: &EstimateParams) -> Result<()> {
        check_declared(self.params(), params)?;
        as_count(
            "steps",
            params.resolve(&COINPRESS_MEAN_PARAMS[2])?,
            1.0,
            64.0,
        )?;
        Ok(())
    }

    fn estimate(
        &self,
        rng: &mut dyn RngCore,
        view: &DataView<'_>,
        params: &EstimateParams,
    ) -> Result<Release> {
        let col = scalar_column(view, "coinpress")?;
        let r = params.resolve(&COINPRESS_MEAN_PARAMS[0])?;
        let sigma = params.resolve(&COINPRESS_MEAN_PARAMS[1])?;
        let steps = as_count(
            "steps",
            params.resolve(&COINPRESS_MEAN_PARAMS[2])?,
            1.0,
            64.0,
        )?;
        let est = coinpress_mean(rng, col.data(), r, sigma, params.epsilon, steps as usize)?;
        Ok(Release::scalar(est, 2.0 * r / col.len() as f64))
    }
}

/// CoinPress-style iterative Gaussian variance under A2.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoinPressVariance;

/// [`CoinPressVariance`]'s parameter table.
pub const COINPRESS_VARIANCE_PARAMS: &[ParamSpec] = &[
    ParamSpec::required("sigma_min", "assumed lower σ bound (A2)"),
    ParamSpec::required("sigma_max", "assumed upper σ bound (A2)"),
    ParamSpec::optional("steps", 4.0, "clip-and-shrink iterations"),
];

impl Estimator for CoinPressVariance {
    fn name(&self) -> &'static str {
        "coinpress_variance"
    }

    fn statistic(&self) -> &'static str {
        "variance"
    }

    fn assumptions(&self) -> &'static [&'static str] {
        &["A2"]
    }

    fn params(&self) -> &'static [ParamSpec] {
        COINPRESS_VARIANCE_PARAMS
    }

    fn validate_params(&self, params: &EstimateParams) -> Result<()> {
        check_declared(self.params(), params)?;
        as_count(
            "steps",
            params.resolve(&COINPRESS_VARIANCE_PARAMS[2])?,
            1.0,
            64.0,
        )?;
        Ok(())
    }

    fn estimate(
        &self,
        rng: &mut dyn RngCore,
        view: &DataView<'_>,
        params: &EstimateParams,
    ) -> Result<Release> {
        let col = scalar_column(view, "coinpress_variance")?;
        let smin = params.resolve(&COINPRESS_VARIANCE_PARAMS[0])?;
        let smax = params.resolve(&COINPRESS_VARIANCE_PARAMS[1])?;
        let steps = as_count(
            "steps",
            params.resolve(&COINPRESS_VARIANCE_PARAMS[2])?,
            1.0,
            64.0,
        )?;
        let n = col.len() as f64;
        let est = coinpress_variance(rng, col.data(), smin, smax, params.epsilon, steps as usize)?;
        let pairs = (n / 2.0).max(1.0);
        Ok(Release::scalar(est, 2.0 * smax * smax / pairs))
    }
}

/// [KSU20] heavy-tailed truncated mean under A1 + a k-th moment bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ksu20Mean;

/// [`Ksu20Mean`]'s parameter table.
pub const KSU20_PARAMS: &[ParamSpec] = &[
    ParamSpec::required("r", "assumed mean range bound: μ ∈ [−r, r] (A1)"),
    ParamSpec::required("mu_k_bound", "assumed k-th central moment bound (A2-style)"),
    ParamSpec::optional("k", 2.0, "moment order (≥ 2)"),
];

impl Estimator for Ksu20Mean {
    fn name(&self) -> &'static str {
        "ksu20"
    }

    fn statistic(&self) -> &'static str {
        "mean"
    }

    fn assumptions(&self) -> &'static [&'static str] {
        &["A1", "A2"]
    }

    fn params(&self) -> &'static [ParamSpec] {
        KSU20_PARAMS
    }

    fn validate_params(&self, params: &EstimateParams) -> Result<()> {
        check_declared(self.params(), params)?;
        as_count("k", params.resolve(&KSU20_PARAMS[2])?, 2.0, 64.0)?;
        Ok(())
    }

    fn estimate(
        &self,
        rng: &mut dyn RngCore,
        view: &DataView<'_>,
        params: &EstimateParams,
    ) -> Result<Release> {
        let col = scalar_column(view, "ksu20")?;
        let r = params.resolve(&KSU20_PARAMS[0])?;
        let mu_k = params.resolve(&KSU20_PARAMS[1])?;
        let k = as_count("k", params.resolve(&KSU20_PARAMS[2])?, 2.0, 64.0)? as u32;
        let n = col.len() as f64;
        let est = ksu20_mean(rng, col.data(), r, k, mu_k, params.epsilon)?;
        // The truncation radius the mechanism derives from the assumed
        // moment bound — its stage-2 release clips to a 4τ window.
        let tau =
            (2.0 * params.epsilon.get() * n * mu_k.max(f64::MIN_POSITIVE)).powf(1.0 / k as f64);
        Ok(Release::scalar(est, 4.0 * tau / n))
    }
}

/// [BS19]-style trimmed mean with smooth sensitivity under A1.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bs19TrimmedMean;

/// [`Bs19TrimmedMean`]'s parameter table.
pub const BS19_PARAMS: &[ParamSpec] = &[
    ParamSpec::required("r", "assumed mean range bound: μ ∈ [−r, r] (A1)"),
    ParamSpec::optional(
        "trim_frac",
        0.05,
        "fraction trimmed from each side, in (0, 0.5)",
    ),
];

impl Estimator for Bs19TrimmedMean {
    fn name(&self) -> &'static str {
        "bs19"
    }

    fn statistic(&self) -> &'static str {
        "mean"
    }

    fn privacy(&self) -> &'static str {
        "ε-DP-flavored (smooth sensitivity + Laplace)"
    }

    fn assumptions(&self) -> &'static [&'static str] {
        &["A1"]
    }

    fn params(&self) -> &'static [ParamSpec] {
        BS19_PARAMS
    }

    fn estimate(
        &self,
        rng: &mut dyn RngCore,
        view: &DataView<'_>,
        params: &EstimateParams,
    ) -> Result<Release> {
        let col = scalar_column(view, "bs19")?;
        let r = params.resolve(&BS19_PARAMS[0])?;
        let trim = params.resolve(&BS19_PARAMS[1])?;
        let est = bs19_trimmed_mean_view(rng, col, r, trim, params.epsilon)?;
        Ok(Release::scalar(est, 2.0 * r / col.len() as f64))
    }
}

/// [DL09] propose-test-release IQR — universal, but (ε, δ)-DP only.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dl09Iqr;

/// [`Dl09Iqr`]'s parameter table.
pub const DL09_PARAMS: &[ParamSpec] = &[ParamSpec::optional(
    "delta",
    1e-6,
    "the δ of the (ε, δ)-DP guarantee (must be > 0)",
)];

impl Estimator for Dl09Iqr {
    fn name(&self) -> &'static str {
        "dl09"
    }

    fn statistic(&self) -> &'static str {
        "iqr"
    }

    fn privacy(&self) -> &'static str {
        "(ε, δ)-DP"
    }

    fn params(&self) -> &'static [ParamSpec] {
        DL09_PARAMS
    }

    fn validate_params(&self, params: &EstimateParams) -> Result<()> {
        check_declared(self.params(), params)?;
        let delta = Delta::new(params.resolve(&DL09_PARAMS[0])?)?;
        if delta.is_pure() {
            return Err(UpdpError::InvalidParameter {
                name: "delta",
                reason: "propose-test-release fundamentally requires δ > 0".into(),
            });
        }
        Ok(())
    }

    fn estimate(
        &self,
        rng: &mut dyn RngCore,
        view: &DataView<'_>,
        params: &EstimateParams,
    ) -> Result<Release> {
        let col = scalar_column(view, "dl09")?;
        let delta = Delta::new(params.resolve(&DL09_PARAMS[0])?)?;
        let est = dl09_iqr_view(rng, col, params.epsilon, delta)?;
        // The released value's own multiplicative grid cell, in
        // absolute terms (post-processing of the DP release).
        Ok(Release::scalar(est.estimate, est.estimate * est.log_cell)
            .with_diagnostic("log_cell", est.log_cell)
            .with_diagnostic("stability", est.stability))
    }
}

/// Folklore clipped-Laplace mean under A1.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveClipMean;

/// [`NaiveClipMean`]'s parameter table.
pub const NAIVE_CLIP_PARAMS: &[ParamSpec] = &[ParamSpec::required(
    "r",
    "assumed mean range bound: μ ∈ [−r, r] (A1)",
)];

impl Estimator for NaiveClipMean {
    fn name(&self) -> &'static str {
        "naive_clip"
    }

    fn statistic(&self) -> &'static str {
        "mean"
    }

    fn assumptions(&self) -> &'static [&'static str] {
        &["A1"]
    }

    fn params(&self) -> &'static [ParamSpec] {
        NAIVE_CLIP_PARAMS
    }

    fn estimate(
        &self,
        rng: &mut dyn RngCore,
        view: &DataView<'_>,
        params: &EstimateParams,
    ) -> Result<Release> {
        let col = scalar_column(view, "naive_clip")?;
        let r = params.resolve(&NAIVE_CLIP_PARAMS[0])?;
        let est = naive_clipped_mean(rng, col.data(), r, params.epsilon)?;
        Ok(Release::scalar(est, 2.0 * r / col.len() as f64))
    }
}

/// The non-private sample mean (the no-privacy reference line).
#[derive(Debug, Clone, Copy, Default)]
pub struct NonPrivateMean;

impl Estimator for NonPrivateMean {
    fn name(&self) -> &'static str {
        "nonprivate"
    }

    fn statistic(&self) -> &'static str {
        "mean"
    }

    fn privacy(&self) -> &'static str {
        "none"
    }

    fn estimate(
        &self,
        _rng: &mut dyn RngCore,
        view: &DataView<'_>,
        _params: &EstimateParams,
    ) -> Result<Release> {
        let col = scalar_column(view, "nonprivate")?;
        Ok(Release::scalar(sample_mean(col.data())?, 0.0))
    }
}

/// The non-private sample variance.
#[derive(Debug, Clone, Copy, Default)]
pub struct NonPrivateVariance;

impl Estimator for NonPrivateVariance {
    fn name(&self) -> &'static str {
        "nonprivate_variance"
    }

    fn statistic(&self) -> &'static str {
        "variance"
    }

    fn privacy(&self) -> &'static str {
        "none"
    }

    fn estimate(
        &self,
        _rng: &mut dyn RngCore,
        view: &DataView<'_>,
        _params: &EstimateParams,
    ) -> Result<Release> {
        let col = scalar_column(view, "nonprivate_variance")?;
        Ok(Release::scalar(sample_variance(col.data())?, 0.0))
    }
}

/// The non-private sample IQR.
#[derive(Debug, Clone, Copy, Default)]
pub struct NonPrivateIqr;

impl Estimator for NonPrivateIqr {
    fn name(&self) -> &'static str {
        "nonprivate_iqr"
    }

    fn statistic(&self) -> &'static str {
        "iqr"
    }

    fn privacy(&self) -> &'static str {
        "none"
    }

    fn estimate(
        &self,
        _rng: &mut dyn RngCore,
        view: &DataView<'_>,
        _params: &EstimateParams,
    ) -> Result<Release> {
        let col = scalar_column(view, "nonprivate_iqr")?;
        Ok(Release::scalar(sample_iqr_view(col)?, 0.0))
    }
}

/// Every Table 1 comparator as a trait object — the baseline half of a
/// serving catalog (`updp_statistical::universal_estimators`
/// contributes the universal half).
pub fn baseline_estimators() -> Vec<Box<dyn Estimator>> {
    vec![
        Box::new(Kv18Mean),
        Box::new(Kv18Variance),
        Box::new(CoinPressMean),
        Box::new(CoinPressVariance),
        Box::new(Ksu20Mean),
        Box::new(Bs19TrimmedMean),
        Box::new(Dl09Iqr),
        Box::new(NaiveClipMean),
        Box::new(NonPrivateMean),
        Box::new(NonPrivateVariance),
        Box::new(NonPrivateIqr),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::privacy::Epsilon;
    use updp_core::rng::seeded;
    use updp_dist::{ContinuousDistribution, Gaussian};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn gaussian(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded(seed);
        Gaussian::new(10.0, 2.0).unwrap().sample_vec(&mut rng, n)
    }

    #[test]
    fn catalog_names_unique_and_metadata_complete() {
        let catalog = baseline_estimators();
        assert_eq!(catalog.len(), 11);
        let mut names: Vec<&str> = catalog.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11, "duplicate estimator names");
        for est in &catalog {
            assert!(!est.statistic().is_empty());
            assert!(!est.privacy().is_empty());
            assert!(!est.multi_column(), "all baselines are scalar");
        }
    }

    #[test]
    fn trait_dispatch_matches_free_functions_bit_for_bit() {
        let data = gaussian(4_000, 0xBA5E);
        let view = DataView::of(&data);
        let e = eps(1.0);

        let direct = kv18_gaussian_mean(&mut seeded(1), &data, 100.0, 0.1, 50.0, e).unwrap();
        let via = Kv18Mean
            .estimate(
                &mut seeded(1),
                &view,
                &EstimateParams::new(e)
                    .with("r", 100.0)
                    .with("sigma_min", 0.1)
                    .with("sigma_max", 50.0),
            )
            .unwrap();
        assert_eq!(via.primary().to_bits(), direct.to_bits());

        let direct = coinpress_mean(&mut seeded(2), &data, 100.0, 2.0, e, 4).unwrap();
        let via = CoinPressMean
            .estimate(
                &mut seeded(2),
                &view,
                &EstimateParams::new(e).with("r", 100.0).with("sigma", 2.0),
            )
            .unwrap();
        assert_eq!(via.primary().to_bits(), direct.to_bits());

        let direct = crate::dl09::dl09_iqr(&mut seeded(3), &data, e, Delta::new(1e-6).unwrap())
            .unwrap()
            .estimate;
        let via = Dl09Iqr
            .estimate(&mut seeded(3), &view, &EstimateParams::new(e))
            .unwrap();
        assert_eq!(via.primary().to_bits(), direct.to_bits());

        let direct = crate::nonprivate::sample_iqr(&data).unwrap();
        let via = NonPrivateIqr
            .estimate(&mut seeded(4), &view, &EstimateParams::new(e))
            .unwrap();
        assert_eq!(via.primary().to_bits(), direct.to_bits());
    }

    #[test]
    fn required_params_are_enforced_before_estimation() {
        let e = eps(1.0);
        // Missing r.
        assert!(NaiveClipMean
            .validate_params(&EstimateParams::new(e))
            .is_err());
        assert!(Kv18Mean
            .validate_params(&EstimateParams::new(e).with("r", 10.0))
            .is_err());
        // Bad integer-valued knobs.
        assert!(CoinPressMean
            .validate_params(
                &EstimateParams::new(e)
                    .with("r", 10.0)
                    .with("sigma", 1.0)
                    .with("steps", 2.5)
            )
            .is_err());
        assert!(Ksu20Mean
            .validate_params(
                &EstimateParams::new(e)
                    .with("r", 10.0)
                    .with("mu_k_bound", 4.0)
                    .with("k", 1.0)
            )
            .is_err());
        // δ = 0 is fundamentally impossible for PTR.
        assert!(Dl09Iqr
            .validate_params(&EstimateParams::new(e).with("delta", 0.0))
            .is_err());
        // Well-formed specs pass.
        assert!(Kv18Mean
            .validate_params(
                &EstimateParams::new(e)
                    .with("r", 10.0)
                    .with("sigma_min", 0.1)
                    .with("sigma_max", 10.0)
            )
            .is_ok());
        assert!(NonPrivateMean
            .validate_params(&EstimateParams::new(e))
            .is_ok());
    }

    #[test]
    fn sensible_estimates_under_honest_assumptions() {
        let data = gaussian(20_000, 7);
        let view = DataView::of(&data);
        let e = eps(1.0);
        let cases: Vec<(Box<dyn Estimator>, EstimateParams, f64, f64)> = vec![
            (
                Box::new(NaiveClipMean),
                EstimateParams::new(e).with("r", 100.0),
                10.0,
                0.5,
            ),
            (
                Box::new(Bs19TrimmedMean),
                EstimateParams::new(e).with("r", 100.0),
                10.0,
                0.5,
            ),
            (
                Box::new(Ksu20Mean),
                EstimateParams::new(e)
                    .with("r", 100.0)
                    .with("mu_k_bound", 4.0),
                10.0,
                1.0,
            ),
            (
                Box::new(Kv18Variance),
                EstimateParams::new(e)
                    .with("sigma_min", 0.1)
                    .with("sigma_max", 50.0),
                4.0,
                2.0,
            ),
            (
                Box::new(CoinPressVariance),
                EstimateParams::new(e)
                    .with("sigma_min", 0.1)
                    .with("sigma_max", 50.0),
                4.0,
                2.0,
            ),
            (
                Box::new(NonPrivateVariance),
                EstimateParams::new(e),
                4.0,
                0.5,
            ),
        ];
        for (i, (est, params, truth, tol)) in cases.iter().enumerate() {
            let r = est
                .estimate(&mut seeded(100 + i as u64), &view, params)
                .unwrap();
            assert!(
                (r.primary() - truth).abs() < *tol,
                "{}: got {} want ~{truth}",
                est.name(),
                r.primary()
            );
            assert_eq!(r.values.len(), r.sensitivities.len());
        }
    }
}
