//! Derive macros for the vendored `serde` shim: emit marker-trait impls
//! for the annotated type. `#[serde(...)]` container/field attributes are
//! accepted and ignored (there is no serialization backend to configure).

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum`/`union` keyword,
/// plus whether a generic parameter list follows it.
fn type_name(input: TokenStream) -> (String, bool) {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id)
                if matches!(id.to_string().as_str(), "struct" | "enum" | "union") =>
            {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("expected type name after `{id}`, found {other:?}"),
                };
                let generic = matches!(
                    tokens.peek(),
                    Some(TokenTree::Punct(p)) if p.as_char() == '<'
                );
                return (name, generic);
            }
            _ => {}
        }
    }
    panic!("serde_derive shim: no struct/enum/union found in derive input");
}

fn marker_impl(input: TokenStream, template: &str) -> TokenStream {
    let (name, generic) = type_name(input);
    assert!(
        !generic,
        "serde_derive shim: generic type `{name}` is not supported; \
         extend vendor/serde_derive if a generic type needs the derive"
    );
    template.replace("__NAME__", &name).parse().unwrap()
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "impl ::serde::Serialize for __NAME__ {}")
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "impl<'de> ::serde::Deserialize<'de> for __NAME__ {}")
}
