//! Offline subset of `serde`: the `Serialize`/`Deserialize` marker traits
//! and their derives.
//!
//! The workspace derives these traits on a handful of result types so
//! downstream consumers *can* serialize them, but nothing in-tree calls a
//! serializer yet. Until a real serialization backend is needed, this
//! vendored shim (see `vendor/README.md`) provides the trait names and a
//! derive that emits marker impls, keeping the source files identical to
//! what they would be against real `serde`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker form of `serde::Serialize`. Carries no methods until a real
/// serialization backend is vendored or fetched.
pub trait Serialize {}

/// Marker form of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
