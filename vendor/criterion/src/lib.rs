//! Offline subset of `criterion`: same macros and builder surface, simple
//! wall-clock measurement underneath.
//!
//! The benches in `crates/updp-bench` are written against the real
//! criterion API so they can be pointed at upstream criterion unchanged
//! once the build environment has registry access. This shim (see
//! `vendor/README.md`) runs each benchmark with a short calibration pass
//! followed by a timed pass and prints mean time per iteration plus
//! throughput when configured. It performs no statistical analysis.
//!
//! Tuning knobs (environment variables):
//! * `CRITERION_SHIM_TARGET_MS` — target measurement time per benchmark
//!   in milliseconds (default 300).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favor of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

fn target_time() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_TARGET_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim runs one
/// setup per iteration regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Setup re-run for every single iteration.
    PerIteration,
}

/// Measures a single benchmark body.
pub struct Bencher {
    iters_run: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            iters_run: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibration: estimate cost with an exponentially growing probe.
        let mut probe = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..probe {
                black_box(routine());
            }
            let took = start.elapsed();
            if took > Duration::from_millis(10) || probe >= 1 << 20 {
                break took / probe.max(1) as u32;
            }
            probe *= 2;
        };
        let iters =
            (target_time().as_nanos() / per_iter.as_nanos().max(1)).clamp(5, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_run = iters;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut probe = 1u64;
        let per_iter = loop {
            let inputs: Vec<I> = (0..probe).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let took = start.elapsed();
            if took > Duration::from_millis(10) || probe >= 1 << 20 {
                break took / probe.max(1) as u32;
            }
            probe *= 2;
        };
        let iters =
            (target_time().as_nanos() / per_iter.as_nanos().max(1)).clamp(5, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters_run = iters;
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters_run.max(1) as f64;
    let mut line = format!(
        "{name:<48} {:>12}/iter ({} iters)",
        fmt_nanos(per_iter),
        b.iters_run
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = count as f64 / (per_iter / 1_000_000_000.0);
        line.push_str(&format!("  {rate:.3e} {unit}/s"));
    }
    println!("{line}");
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(&name, &b, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        let mut b = Bencher::new();
        f(&mut b);
        report(&full, &b, self.throughput);
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
