//! Offline, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! This workspace builds in environments with no crates.io access, so the
//! exact slice of the `rand` API the codebase uses is vendored here (see
//! `vendor/README.md` for the policy). The generator behind
//! [`rngs::StdRng`] is xoshiro256++ seeded via SplitMix64 — a
//! statistically strong, deterministic PRNG. It is **not** the ChaCha12
//! CSPRNG that upstream `rand` uses for `StdRng`; this matters for
//! cryptographic hardening, not for the utility experiments (DESIGN.md §1
//! discusses the distinction, alongside the Mironov floating-point
//! caveat).
//!
//! Surface provided (everything the workspace imports, nothing more):
//! * [`RngCore`], [`Rng`], [`SeedableRng`]
//! * [`rngs::StdRng`] (deterministic; `seed_from_u64`, `from_seed`,
//!   `from_entropy`)
//! * [`seq::SliceRandom::shuffle`] and [`seq::index::sample`]

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// Types that can be sampled from the standard (uniform) distribution via
/// [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $method:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$method() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl StandardSample for u128 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::standard_sample(rng) as i128
    }
}

/// Types usable as the bounds of a [`Rng::gen_range`] half-open range.
pub trait SampleUniform: Sized {
    /// Draws a value uniformly from `[low, high)`. Panics if the range is
    /// empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Draws a `u128` uniformly below `bound` (which must be nonzero) without
/// modulo bias, by rejection sampling on the top of the range.
#[inline]
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    // Largest multiple of `bound` representable in u128; reject above it.
    let zone = u128::MAX - (u128::MAX - bound + 1) % bound;
    loop {
        let v = u128::standard_sample(rng);
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let width = (high as i128).wrapping_sub(low as i128) as u128;
                low.wrapping_add(uniform_u128_below(rng, width) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        low + uniform_u128_below(rng, high - low)
    }
}

impl SampleUniform for i128 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        let width = high.wrapping_sub(low) as u128;
        low.wrapping_add(uniform_u128_below(rng, width) as i128)
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        let u = f64::standard_sample(rng);
        low + u * (high - low)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (uniform in
    /// `[0, 1)` for floats, uniform over all values for integers/bool).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from the half-open `range`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p={p}");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The byte-array seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed, expanded to a full
    /// seed with SplitMix64 (so nearby integer seeds yield uncorrelated
    /// states).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Constructs the generator from OS entropy.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_u64())
    }
}

/// SplitMix64: the standard seed-expansion generator.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    #[inline]
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Best-effort OS entropy: `/dev/urandom` where available, otherwise a
/// hash of the current time and a process-global counter.
fn entropy_u64() -> u64 {
    use std::io::Read;
    if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
        let mut buf = [0u8; 8];
        if f.read_exact(&mut buf).is_ok() {
            return u64::from_le_bytes(buf);
        }
    }
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default();
    h.write_u128(now.as_nanos());
    h.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
    h.finish()
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike upstream `rand`'s ChaCha12-based `StdRng` this is not a
    /// CSPRNG; it is a fast, high-quality statistical PRNG with the same
    /// seeding API. See the crate docs and DESIGN.md §1.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    const fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = rotl(self.s[3], 45);
            result
        }

        #[inline]
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // The all-zero state is a fixed point of xoshiro; remap it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related randomness: shuffling and index sampling.

    use super::Rng;

    /// Slice extensions backed by a generator.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::SampleUniform::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = crate::SampleUniform::sample_range(rng, 0, self.len());
                Some(&self[i])
            }
        }
    }

    pub mod index {
        //! Sampling distinct indices from `0..length`.

        use super::super::Rng;

        /// A set of sampled indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterates over the sampled indices by value.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Consumes into a plain `Vec<usize>`.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`
        /// via a partial Fisher–Yates shuffle.
        ///
        /// Panics if `amount > length`, matching upstream behavior.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = crate::SampleUniform::sample_range(rng, i, length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index, SliceRandom};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                assert!((0.0..1.0).contains(&u));
                u
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let neg: i64 = rng.gen_range(-5i64..-1);
        assert!((-5..-1).contains(&neg));
        let wide: i128 = rng.gen_range(-(1i128 << 100)..(1i128 << 100));
        assert!((-(1i128 << 100)..(1i128 << 100)).contains(&wide));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let idx = index::sample(&mut rng, 1000, 100);
        assert_eq!(idx.len(), 100);
        let mut seen = std::collections::HashSet::new();
        for i in idx.iter() {
            assert!(i < 1000);
            assert!(seen.insert(i), "duplicate index {i}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(9);
        let dynr: &mut dyn RngCore = &mut rng;
        let u: f64 = dynr.gen();
        assert!((0.0..1.0).contains(&u));
    }
}
