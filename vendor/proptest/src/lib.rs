//! Offline subset of `proptest`: the `proptest!` macro, range and
//! collection strategies, and `prop_assert*` assertions.
//!
//! Property tests in this workspace are written against the real proptest
//! API so they can be pointed at upstream proptest unchanged once the
//! build environment has registry access (see `vendor/README.md`). The
//! semantic difference: cases are drawn from a **deterministic** seed
//! derived from the test's module path and case index (stable across
//! runs and machines — good for CI), and failing inputs are reported but
//! **not shrunk**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating arbitrary values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, u128, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            self.start + rng.gen::<f64>() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            self.start + rng.gen::<f32>() * (self.end - self.start)
        }
    }

    /// A strategy producing a constant value (mirrors `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Permitted length range for a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange(*r.start()..r.end() + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.0.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Configuration and failure plumbing used by the `proptest!` macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-block configuration (only `cases` is honored by the shim).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed test case (carries the assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-case RNG: hash of the fully qualified test name,
    /// mixed with the case index (FNV-1a into `StdRng::seed_from_u64`).
    pub fn case_rng(test_name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs `cases` times with fresh deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $( $(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut case_rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut case_rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {case}/{}: {e}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the whole process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` != `{:?}`", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{:?}` == `{:?}`", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, $($fmt)+);
    }};
}

pub mod prelude {
    //! One-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! Mirrors the `prop` module alias exposed by proptest's prelude.
        pub use crate::collection;
    }
}
