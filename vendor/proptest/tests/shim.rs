//! Self-tests for the proptest shim: cases actually run, values respect
//! their strategies, and failing assertions really fail the test.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

static CASES_RUN: AtomicU32 = AtomicU32::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn runs_the_configured_number_of_cases(_x in 0u64..10) {
        CASES_RUN.fetch_add(1, Ordering::Relaxed);
    }

    #[test]
    fn range_strategies_respect_bounds(
        x in -1e6f64..1e6,
        n in 5i64..10,
        u in 1usize..4,
    ) {
        prop_assert!((-1e6..1e6).contains(&x));
        prop_assert!((5..10).contains(&n));
        prop_assert!((1..4).contains(&u));
    }

    #[test]
    fn vec_strategy_respects_size_and_element_bounds(
        v in prop::collection::vec(-100f64..100.0, 3..7),
    ) {
        prop_assert!((3..7).contains(&v.len()));
        prop_assert!(v.iter().all(|x| (-100.0..100.0).contains(x)));
    }

    #[test]
    fn mut_bindings_work(mut v in prop::collection::vec(0i64..100, 2..5)) {
        v.sort_unstable();
        prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }
}

#[test]
fn all_cases_were_executed() {
    // Test ordering within a binary is alphabetical by default; force the
    // dependency explicitly instead of relying on it.
    runs_the_configured_number_of_cases();
    assert!(CASES_RUN.load(Ordering::Relaxed) >= 64);
}

mod failure_detection {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        #[should_panic(expected = "proptest always_fails failed")]
        fn always_fails(x in 0u64..10) {
            prop_assert!(x > 100, "x was {x}");
        }

        #[test]
        #[should_panic]
        fn prop_assert_eq_fails(x in 0u64..10) {
            prop_assert_eq!(x, x + 1);
        }
    }
}

#[test]
fn values_vary_across_cases() {
    use proptest::strategy::Strategy;
    use proptest::test_runner::case_rng;
    let strat = 0u64..1_000_000;
    let mut seen = std::collections::HashSet::new();
    for case in 0..32 {
        let mut rng = case_rng("values_vary", case);
        seen.insert(strat.generate(&mut rng));
    }
    assert!(
        seen.len() > 20,
        "only {} distinct values in 32 cases",
        seen.len()
    );
}

#[test]
fn deterministic_across_runs() {
    use proptest::strategy::Strategy;
    use proptest::test_runner::case_rng;
    let strat = -1e9f64..1e9;
    let a: Vec<f64> = (0..8)
        .map(|c| strat.generate(&mut case_rng("det", c)))
        .collect();
    let b: Vec<f64> = (0..8)
        .map(|c| strat.generate(&mut case_rng("det", c)))
        .collect();
    assert_eq!(a, b);
}
