//! The trait-dispatch equivalence suite (DESIGN.md §7).
//!
//! Every estimator reachable through the workspace-wide
//! `updp_statistical::Estimator` trait — the five universal estimators
//! *and* every Table 1 baseline — must release **bit-identical**
//! values to its direct free-function call on the same seed and data.
//! This is the determinism obligation that lets the serving engine and
//! the experiment runner dispatch through the trait (and lets
//! `PreparedDataset` feed cached artifacts to the estimators) without
//! ever changing a released value.

use updp::core::privacy::{Delta, Epsilon};
use updp::core::rng::seeded;
use updp::dist::{ContinuousDistribution, Gaussian, LogNormal};
use updp::statistical::{
    estimate_iqr, estimate_mean, estimate_mean_multivariate, estimate_quantile, estimate_variance,
    ColumnCache, ColumnView, DataView, EstimateParams, Estimator, PreparedDataset, UniversalIqr,
    UniversalMean, UniversalMultiMean, UniversalQuantile, UniversalVariance,
};
use updp_baselines::{
    bs19_trimmed_mean, coinpress_mean, coinpress_variance, dl09_iqr, ksu20_mean,
    kv18_gaussian_mean, kv18_gaussian_variance, naive_clipped_mean, sample_iqr, sample_mean,
    sample_variance, Bs19TrimmedMean, CoinPressMean, CoinPressVariance, Dl09Estimator, Ksu20Mean,
    Kv18Mean, Kv18Variance, NaiveClipMean, NonPrivateIqr, NonPrivateMean, NonPrivateVariance,
};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn gaussian(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = seeded(seed);
    Gaussian::new(25.0, 4.0).unwrap().sample_vec(&mut rng, n)
}

fn lognormal(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = seeded(seed);
    LogNormal::new(1.0, 0.8).unwrap().sample_vec(&mut rng, n)
}

/// Asserts trait dispatch == direct call, bitwise, across several
/// seeds, on both a bare view and a cached `PreparedDataset` view.
fn assert_equivalent<F>(estimator: &dyn Estimator, params: &EstimateParams, data: &[f64], direct: F)
where
    F: Fn(&mut rand::rngs::StdRng) -> updp::core::Result<f64>,
{
    let prepared = PreparedDataset::new(vec![data.to_vec()]);
    for seed in [1u64, 7, 0xDECAF] {
        let reference = direct(&mut seeded(seed));
        // Bare (uncached) view.
        let bare = estimator.estimate(&mut seeded(seed), &DataView::of(data), params);
        // Cached snapshot view — run twice so the second call reads
        // every cached artifact the first call built.
        let cached_cold = estimator.estimate(&mut seeded(seed), &prepared.view(), params);
        let cached_warm = estimator.estimate(&mut seeded(seed), &prepared.view(), params);
        match reference {
            Ok(value) => {
                for (label, outcome) in [
                    ("bare", &bare),
                    ("cached-cold", &cached_cold),
                    ("cached-warm", &cached_warm),
                ] {
                    let released = outcome
                        .as_ref()
                        .unwrap_or_else(|e| panic!("{} {label}: {e}", estimator.name()));
                    assert_eq!(
                        released.primary().to_bits(),
                        value.to_bits(),
                        "{} {label} diverged at seed {seed}",
                        estimator.name()
                    );
                }
            }
            Err(_) => {
                assert!(
                    bare.is_err(),
                    "{}: direct errored, trait did not",
                    estimator.name()
                );
                assert!(cached_cold.is_err());
                assert!(cached_warm.is_err());
            }
        }
    }
}

#[test]
fn universal_estimators_match_their_free_functions() {
    let data = gaussian(6_000, 0xA);
    let e = eps(0.7);
    let beta = 0.1;
    let params = EstimateParams::new(e).with_beta(beta);

    assert_equivalent(&UniversalMean, &params, &data, |rng| {
        estimate_mean(rng, &data, e, beta).map(|r| r.estimate)
    });
    assert_equivalent(&UniversalVariance, &params, &data, |rng| {
        estimate_variance(rng, &data, e, beta).map(|r| r.estimate)
    });
    assert_equivalent(&UniversalIqr, &params, &data, |rng| {
        estimate_iqr(rng, &data, e, beta).map(|r| r.estimate)
    });
    assert_equivalent(
        &UniversalQuantile,
        &params.clone().with("q", 0.9),
        &data,
        |rng| estimate_quantile(rng, &data, 0.9, e, beta).map(|r| r.estimate),
    );
    // Skewed data too (different SVT/discretization paths).
    let skewed = lognormal(6_000, 0xB);
    assert_equivalent(&UniversalIqr, &params, &skewed, |rng| {
        estimate_iqr(rng, &skewed, e, beta).map(|r| r.estimate)
    });
    assert_equivalent(
        &UniversalQuantile,
        &params.clone().with("q", 0.99),
        &skewed,
        |rng| estimate_quantile(rng, &skewed, 0.99, e, beta).map(|r| r.estimate),
    );
}

#[test]
fn multivariate_mean_matches_its_free_function() {
    let mut rng = seeded(0xC);
    let g = Gaussian::new(-3.0, 2.0).unwrap();
    let rows: Vec<Vec<f64>> = (0..4_000)
        .map(|_| (0..3).map(|_| g.sample(&mut rng)).collect())
        .collect();
    let columns: Vec<Vec<f64>> = (0..3)
        .map(|j| rows.iter().map(|row| row[j]).collect())
        .collect();
    let e = eps(1.2);
    let params = EstimateParams::new(e).with_beta(0.1);
    for seed in [2u64, 11] {
        let direct = estimate_mean_multivariate(&mut seeded(seed), &rows, e, 0.1).unwrap();
        let via = UniversalMultiMean
            .estimate(&mut seeded(seed), &DataView::of_columns(&columns), &params)
            .unwrap();
        assert_eq!(via.values.len(), direct.estimate.len());
        for (a, b) in via.values.iter().zip(&direct.estimate) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "multi-mean diverged at seed {seed}"
            );
        }
    }
}

#[test]
fn baseline_estimators_match_their_free_functions() {
    let data = gaussian(6_000, 0xD);
    let e = eps(0.9);

    assert_equivalent(
        &NaiveClipMean,
        &EstimateParams::new(e).with("r", 500.0),
        &data,
        |rng| naive_clipped_mean(rng, &data, 500.0, e),
    );
    assert_equivalent(
        &Kv18Mean,
        &EstimateParams::new(e)
            .with("r", 500.0)
            .with("sigma_min", 0.1)
            .with("sigma_max", 100.0),
        &data,
        |rng| kv18_gaussian_mean(rng, &data, 500.0, 0.1, 100.0, e),
    );
    assert_equivalent(
        &Kv18Variance,
        &EstimateParams::new(e)
            .with("sigma_min", 0.1)
            .with("sigma_max", 100.0),
        &data,
        |rng| kv18_gaussian_variance(rng, &data, 0.1, 100.0, e),
    );
    assert_equivalent(
        &CoinPressMean,
        &EstimateParams::new(e)
            .with("r", 500.0)
            .with("sigma", 4.0)
            .with("steps", 3.0),
        &data,
        |rng| coinpress_mean(rng, &data, 500.0, 4.0, e, 3),
    );
    assert_equivalent(
        &CoinPressVariance,
        &EstimateParams::new(e)
            .with("sigma_min", 0.1)
            .with("sigma_max", 100.0),
        &data,
        |rng| coinpress_variance(rng, &data, 0.1, 100.0, e, 4),
    );
    assert_equivalent(
        &Ksu20Mean,
        &EstimateParams::new(e)
            .with("r", 500.0)
            .with("k", 2.0)
            .with("mu_k_bound", 16.0),
        &data,
        |rng| ksu20_mean(rng, &data, 500.0, 2, 16.0, e),
    );
    assert_equivalent(
        &Bs19TrimmedMean,
        &EstimateParams::new(e)
            .with("r", 500.0)
            .with("trim_frac", 0.05),
        &data,
        |rng| bs19_trimmed_mean(rng, &data, 500.0, 0.05, e),
    );
    let delta = Delta::new(1e-6).unwrap();
    assert_equivalent(
        &Dl09Estimator,
        &EstimateParams::new(e).with("delta", 1e-6),
        &data,
        |rng| dl09_iqr(rng, &data, e, delta).map(|r| r.estimate),
    );
    assert_equivalent(&NonPrivateMean, &EstimateParams::new(e), &data, |_rng| {
        sample_mean(&data)
    });
    assert_equivalent(
        &NonPrivateVariance,
        &EstimateParams::new(e),
        &data,
        |_rng| sample_variance(&data),
    );
    assert_equivalent(&NonPrivateIqr, &EstimateParams::new(e), &data, |_rng| {
        sample_iqr(&data)
    });
}

#[test]
fn cached_views_share_artifacts_without_changing_results() {
    // Two IQR queries on one PreparedDataset snapshot: the second must
    // reuse the first's grid when the privately-chosen bucket repeats
    // (same seed ⇒ same bucket) and both must equal the bare path.
    let data = lognormal(8_000, 0xE);
    let prepared = PreparedDataset::new(vec![data.clone()]);
    let params = EstimateParams::new(eps(1.0)).with_beta(0.1);
    let view = prepared.view();
    let a = UniversalIqr
        .estimate(&mut seeded(3), &view, &params)
        .unwrap();
    let grids_after_first = view.col(0).cached_grids();
    assert!(grids_after_first >= 1, "grid cache must be warmed");
    let b = UniversalIqr
        .estimate(&mut seeded(3), &view, &params)
        .unwrap();
    assert_eq!(a.primary().to_bits(), b.primary().to_bits());
    assert_eq!(
        view.col(0).cached_grids(),
        grids_after_first,
        "same-seed repeat must reuse the cached grid"
    );
    // And a throwaway local cache gives the same answer as none.
    let cache = ColumnCache::new();
    let local = UniversalIqr
        .estimate(
            &mut seeded(3),
            &DataView::from_views(vec![ColumnView::cached(&data, &cache)]),
            &params,
        )
        .unwrap();
    assert_eq!(local.primary().to_bits(), a.primary().to_bits());
}

#[test]
fn gap_summary_mode_is_deterministic_and_warm_equals_cold() {
    // The serving engine opts its snapshots into the cached pair-gap
    // summary (DESIGN.md §12). Summary-mode releases draw no pairing
    // coins, so they legitimately differ from the bare path — but they
    // must still be (a) repeat-deterministic at a fixed seed, (b)
    // identical warm vs cold (the cached summary is a pure function of
    // the column), and (c) strictly confined to opted-in snapshots.
    let data = lognormal(8_000, 0xF);
    let params = EstimateParams::new(eps(1.0)).with_beta(0.1);
    let opted = PreparedDataset::new(vec![data.clone()]).with_gap_summaries();
    let view = opted.view();
    assert!(
        !view.col(0).has_gap_summary(),
        "summary must be lazy, not built at registration"
    );
    for seed in [1u64, 7, 0xDECAF] {
        let cold = UniversalIqr
            .estimate(&mut seeded(seed), &view, &params)
            .unwrap();
        assert!(
            view.col(0).has_gap_summary(),
            "first IQR query must warm the gap summary"
        );
        let warm = UniversalIqr
            .estimate(&mut seeded(seed), &view, &params)
            .unwrap();
        assert_eq!(
            cold.primary().to_bits(),
            warm.primary().to_bits(),
            "summary-mode warm diverged from cold at seed {seed}"
        );
        // A second opted-in snapshot of the same column reproduces the
        // release exactly: the summary carries no hidden per-instance
        // state.
        let replay = UniversalIqr
            .estimate(
                &mut seeded(seed),
                &PreparedDataset::new(vec![data.clone()])
                    .with_gap_summaries()
                    .view(),
                &params,
            )
            .unwrap();
        assert_eq!(replay.primary().to_bits(), cold.primary().to_bits());
    }
    // Quantile routes through the same summary-backed IQR lower bound.
    let q_params = params.clone().with("q", 0.75);
    let q_cold = UniversalQuantile
        .estimate(&mut seeded(5), &view, &q_params)
        .unwrap();
    let q_warm = UniversalQuantile
        .estimate(&mut seeded(5), &view, &q_params)
        .unwrap();
    assert_eq!(q_cold.primary().to_bits(), q_warm.primary().to_bits());
    // Default snapshots never grow a summary, even after queries.
    let plain = PreparedDataset::new(vec![data]);
    let plain_view = plain.view();
    UniversalIqr
        .estimate(&mut seeded(3), &plain_view, &params)
        .unwrap();
    assert!(
        !plain_view.col(0).has_gap_summary(),
        "default snapshots must keep the historical draw path"
    );
}
