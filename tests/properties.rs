//! Property-based tests (proptest) on cross-crate invariants.
//!
//! These complement the per-module unit tests by checking structural
//! invariants on *arbitrary* inputs: estimators never panic, never emit
//! NaN on finite data, respect domains, and transform equivariantly.

// Exact `==` on f64 is deliberate here: these tests pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#![allow(clippy::float_cmp)]

use proptest::prelude::*;
use updp::core::clipped_mean::{clip, clipped_mean};
use updp::core::inverse_sensitivity::finite_domain_quantile;
use updp::core::privacy::Epsilon;
use updp::core::rng::seeded;
use updp::empirical::{infinite_domain_mean, infinite_domain_range, Discretizer, SortedInts};
use updp::statistical::{estimate_iqr, estimate_iqr_lower_bound, estimate_mean};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clip_is_idempotent_and_bounded(x in -1e12f64..1e12, a in -1e6f64..1e6, w in 0.0f64..1e6) {
        let (lo, hi) = (a, a + w);
        let c = clip(x, lo, hi);
        prop_assert!(c >= lo && c <= hi);
        prop_assert_eq!(clip(c, lo, hi), c);
    }

    #[test]
    fn clipped_mean_lies_in_interval(
        data in prop::collection::vec(-1e9f64..1e9, 1..200),
        a in -1e3f64..1e3,
        w in 0.001f64..1e3,
    ) {
        let m = clipped_mean(&data, a, a + w).unwrap();
        prop_assert!(m >= a - 1e-9 && m <= a + w + 1e-9);
    }

    #[test]
    fn discretizer_roundtrip_within_half_bucket(
        x in -1e9f64..1e9,
        bucket in 0.001f64..1e3,
    ) {
        let d = Discretizer::new(bucket).unwrap();
        let back = d.to_real(d.to_int(x).unwrap());
        prop_assert!((back - x).abs() <= bucket / 2.0 + 1e-9);
    }

    #[test]
    fn quantile_output_stays_in_domain(
        mut values in prop::collection::vec(-1000i64..1000, 5..100),
        tau in 1usize..100,
        seed in 0u64..1000,
    ) {
        values.sort_unstable();
        let tau = tau.min(values.len());
        let mut rng = seeded(seed);
        let y = finite_domain_quantile(&mut rng, &values, tau, -2000, 2000, eps(1.0), 0.1).unwrap();
        prop_assert!((-2000..=2000).contains(&y));
    }

    #[test]
    fn empirical_mean_is_finite_and_range_ordered(
        values in prop::collection::vec(-1_000_000i64..1_000_000, 4..300),
        seed in 0u64..1000,
    ) {
        let data = SortedInts::new(values).unwrap();
        let mut rng = seeded(seed);
        let r = infinite_domain_range(&mut rng, &data, eps(1.0), 0.2).unwrap();
        prop_assert!(r.lo <= r.hi);
        let m = infinite_domain_mean(&mut rng, &data, eps(1.0), 0.2).unwrap();
        prop_assert!(m.estimate.is_finite());
        prop_assert!(m.clipped <= data.len());
    }

    #[test]
    fn statistical_mean_never_panics_or_nans(
        data in prop::collection::vec(-1e8f64..1e8, 16..400),
        seed in 0u64..1000,
    ) {
        // Contract: never panic. Below the Theorem 4.5 sample requirement
        // the privately-chosen bucket can be absurdly small for the data
        // scale, which surfaces as an explicit DomainOverflow error — an
        // acceptable (and documented) outcome; garbage output is not.
        let mut rng = seeded(seed);
        match estimate_mean(&mut rng, &data, eps(0.8), 0.2) {
            Ok(r) => {
                prop_assert!(r.estimate.is_finite());
                prop_assert!(r.bucket > 0.0);
                prop_assert!(r.range.lo <= r.range.hi);
            }
            Err(updp::core::UpdpError::DomainOverflow { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    #[test]
    fn iqr_lower_bound_is_positive_power_like(
        data in prop::collection::vec(-1e6f64..1e6, 4..400),
        seed in 0u64..1000,
    ) {
        let mut rng = seeded(seed);
        let lb = estimate_iqr_lower_bound(&mut rng, &data, eps(1.0), 0.2).unwrap();
        prop_assert!(lb > 0.0 && lb.is_finite());
    }

    #[test]
    fn iqr_estimate_is_finite(
        data in prop::collection::vec(-1e6f64..1e6, 16..300),
        seed in 0u64..500,
    ) {
        let mut rng = seeded(seed);
        let r = estimate_iqr(&mut rng, &data, eps(1.0), 0.2).unwrap();
        prop_assert!(r.estimate.is_finite());
        prop_assert!(r.q1.is_finite() && r.q3.is_finite());
        prop_assert!(r.bucket > 0.0);
    }

    #[test]
    fn shift_equivariance_of_statistical_mean(
        pattern in prop::collection::vec(-100f64..100.0, 32..64),
        shift in -1e6f64..1e6,
        seed in 0u64..100,
    ) {
        // At a sample size where Theorem 4.5's guarantee actually holds
        // (εn = 4000 here), running on D and on D + shift must both land
        // near their respective sample means: the estimator tracks a
        // million-unit relocation with zero configuration. (Below the
        // required n there is no such invariant — Laplace noise is
        // unbounded — so this property deliberately uses a large n.)
        let base: Vec<f64> = (0..2000).map(|i| pattern[i % pattern.len()]).collect();
        let shifted: Vec<f64> = base.iter().map(|x| x + shift).collect();
        let mean_base: f64 = base.iter().sum::<f64>() / base.len() as f64;
        let mut rng1 = seeded(seed);
        let mut rng2 = seeded(seed);
        let r1 = estimate_mean(&mut rng1, &base, eps(2.0), 0.1).unwrap();
        let r2 = estimate_mean(&mut rng2, &shifted, eps(2.0), 0.1).unwrap();
        prop_assert!((r1.estimate - mean_base).abs() <= 100.0, "base err {}", r1.estimate - mean_base);
        prop_assert!(
            (r2.estimate - (mean_base + shift)).abs() <= 100.0,
            "shifted err {}", r2.estimate - (mean_base + shift)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn special_functions_agree_with_distribution_layer(
        mu in -100f64..100.0,
        sigma in 0.01f64..100.0,
        p in 0.001f64..0.999,
    ) {
        use updp::dist::{ContinuousDistribution, Gaussian};
        let g = Gaussian::new(mu, sigma).unwrap();
        let x = g.quantile(p);
        prop_assert!((g.cdf(x) - p).abs() < 1e-8);
        // pdf is the derivative of cdf (finite difference check).
        let h = sigma * 1e-5;
        let deriv = (g.cdf(x + h) - g.cdf(x - h)) / (2.0 * h);
        prop_assert!((deriv - g.pdf(x)).abs() <= 1e-4 * (1.0 / sigma).max(1.0));
    }

    #[test]
    fn laplace_noise_symmetry(scale in 0.01f64..100.0, seed in 0u64..500) {
        use updp::core::laplace::sample_laplace;
        let mut rng = seeded(seed);
        let s: f64 = (0..2000).map(|_| sample_laplace(&mut rng, scale).signum()).sum();
        // Sign sum of 2000 fair coins: |s| ≤ 6·√2000 ≈ 268 w.o.p.
        prop_assert!(s.abs() < 270.0, "sign bias {s}");
    }
}
