//! Budget-composition integration tests: sequential releases on one
//! dataset compose per Lemma 2.2, and the accountant arithmetic used by
//! the facade adds up to the advertised totals.

use updp::core::privacy::{BudgetAccountant, Epsilon, PrivacyGuarantee};
use updp::core::rng::seeded;
use updp::dist::{ContinuousDistribution, Gaussian};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

#[test]
fn facade_all_uses_exactly_the_advertised_budget() {
    // `UniversalEstimator::all` splits ε into three equal shares;
    // replaying the split through an accountant must spend exactly ε.
    let total = eps(0.9);
    let mut acc = BudgetAccountant::new(total);
    for (label, share) in [("mean", 0), ("variance", 1), ("iqr", 2)] {
        let _ = share;
        acc.charge(label, total.scale(1.0 / 3.0)).unwrap();
    }
    assert!(acc.remaining() < 1e-9, "remaining {}", acc.remaining());
    assert_eq!(acc.log().len(), 3);
}

#[test]
fn internal_stage_budgets_of_estimate_mean_sum_to_epsilon() {
    // Algorithm 8's budget: ε/8 (IQR lower bound) + amplified 3ε′/4
    // (range on the εn-subsample, which costs 3ε/4 after Theorem 2.4)
    // + ε/8 (the Laplace release at scale 8|R̃|/(εn)).
    let e = eps(0.6);
    let mut acc = BudgetAccountant::new(e);
    acc.charge("iqr-lower-bound", e.scale(1.0 / 8.0)).unwrap();
    // Amplification: inner ε′ = ln((e^ε−1)/ε + 1) at rate ε amplifies
    // back to ε; the 3/4 share costs at most 3ε/4.
    let inner = updp::core::amplification::paper_inner_epsilon(e);
    let outer_cost = updp::core::amplification::amplified_epsilon(inner.scale(3.0 / 4.0), e.get());
    assert!(outer_cost.get() <= 3.0 * e.get() / 4.0 + 1e-12);
    acc.charge("subsampled-range", outer_cost).unwrap();
    acc.charge("laplace-release", e.scale(1.0 / 8.0)).unwrap();
    assert!(
        acc.remaining() >= 0.0,
        "budget overspent by {}",
        -acc.remaining()
    );
}

#[test]
fn repeated_releases_degrade_gracefully_with_budget_split() {
    // k sequential mean releases at ε/k each: every release is still
    // accurate, and the error grows roughly linearly in k (noise ∝ k/εn)
    // while total privacy stays ε.
    let g = Gaussian::new(10.0, 1.0).unwrap();
    let n = 40_000;
    let total = eps(1.0);
    let mut rng = seeded(1);
    let data = g.sample_vec(&mut rng, n);

    let err_at = |k: usize, master: u64| -> f64 {
        let share = total.scale(1.0 / k as f64);
        let mut worst: f64 = 0.0;
        let mut rng = seeded(master);
        for _ in 0..k {
            let r = updp::statistical::estimate_mean(&mut rng, &data, share, 0.1).unwrap();
            worst = worst.max((r.estimate - 10.0).abs());
        }
        worst
    };
    let one = err_at(1, 10);
    let eight = err_at(8, 20);
    assert!(one < 0.1, "single release error {one}");
    assert!(eight < 1.0, "8-way split worst error {eight}");
}

#[test]
fn guarantee_composition_matches_accountant() {
    let a = PrivacyGuarantee::pure(eps(0.25));
    let b = PrivacyGuarantee::pure(eps(0.35));
    let c = a.compose(b);
    assert!((c.epsilon.get() - 0.6).abs() < 1e-12);
    assert!(c.delta.is_pure());
}

#[test]
fn epsilon_split_is_exhaustive_and_proportional() {
    let e = eps(2.0);
    let parts = e.split(&[3.0, 1.0]);
    assert!((parts[0].get() - 1.5).abs() < 1e-12);
    assert!((parts[1].get() - 0.5).abs() < 1e-12);
    let sum: f64 = parts.iter().map(|p| p.get()).sum();
    assert!((sum - 2.0).abs() < 1e-12);
}
