//! Adversarial-input robustness: every public estimator must either
//! return a finite answer or a descriptive error — never panic, never
//! NaN — on pathological datasets a hostile or buggy client could send.

use updp::core::privacy::{Delta, Epsilon};
use updp::core::rng::seeded;
use updp::core::UpdpError;
use updp::empirical::{infinite_domain_mean, infinite_domain_sum, SortedInts};
use updp::statistical::{estimate_quantile, estimate_quantile_range};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Pathological real-valued datasets.
fn adversarial_real_datasets() -> Vec<(&'static str, Vec<f64>)> {
    vec![
        ("all identical", vec![42.0; 500]),
        ("two point masses", {
            let mut v = vec![-1e9; 250];
            v.extend(vec![1e9; 250]);
            v
        }),
        (
            "alternating extremes",
            (0..500)
                .map(|i| if i % 2 == 0 { -1e15 } else { 1e15 })
                .collect(),
        ),
        (
            "subnormal scale",
            (0..500).map(|i| (i as f64) * 1e-310).collect(),
        ),
        (
            "huge magnitudes",
            (0..500).map(|i| 1e300 - (i as f64) * 1e290).collect(),
        ),
        ("single outlier", {
            let mut v = vec![0.0; 499];
            v.push(1e18);
            v
        }),
        (
            "geometric spread",
            (0..500).map(|i| 2f64.powi(i % 200 - 100)).collect(),
        ),
        (
            "tiny n",
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
        ),
    ]
}

/// Acceptable outcomes: finite estimate, or a *specific* documented
/// error (never a panic, which would fail the test by unwinding).
fn acceptable(result: updp::core::Result<f64>, label: &str) {
    match result {
        Ok(v) => assert!(v.is_finite(), "{label}: non-finite estimate {v}"),
        Err(UpdpError::DomainOverflow { .. })
        | Err(UpdpError::InsufficientData { .. })
        | Err(UpdpError::MechanismRefused { .. }) => {}
        Err(e) => panic!("{label}: unexpected error kind: {e}"),
    }
}

#[test]
fn statistical_mean_survives_adversarial_inputs() {
    for (label, data) in adversarial_real_datasets() {
        let mut rng = seeded(1);
        acceptable(
            updp::statistical::estimate_mean(&mut rng, &data, eps(1.0), 0.2).map(|r| r.estimate),
            label,
        );
    }
}

#[test]
fn statistical_variance_survives_adversarial_inputs() {
    for (label, data) in adversarial_real_datasets() {
        let mut rng = seeded(2);
        acceptable(
            updp::statistical::estimate_variance(&mut rng, &data, eps(1.0), 0.2)
                .map(|r| r.estimate),
            label,
        );
    }
}

#[test]
fn statistical_iqr_survives_adversarial_inputs() {
    for (label, data) in adversarial_real_datasets() {
        let mut rng = seeded(3);
        acceptable(
            updp::statistical::estimate_iqr(&mut rng, &data, eps(1.0), 0.2).map(|r| r.estimate),
            label,
        );
    }
}

#[test]
fn statistical_quantiles_survive_adversarial_inputs() {
    for (label, data) in adversarial_real_datasets() {
        let mut rng = seeded(4);
        for q in [0.01, 0.5, 0.99] {
            acceptable(
                estimate_quantile(&mut rng, &data, q, eps(1.0), 0.2).map(|r| r.estimate),
                label,
            );
        }
        acceptable(
            estimate_quantile_range(&mut rng, &data, 0.1, 0.9, eps(1.0), 0.2),
            label,
        );
    }
}

#[test]
fn empirical_layer_survives_integer_extremes() {
    let datasets: Vec<(&str, Vec<i64>)> = vec![
        (
            "i64 extremes",
            vec![i64::MIN, i64::MIN / 2, 0, i64::MAX / 2, i64::MAX],
        ),
        ("all i64::MAX", vec![i64::MAX; 100]),
        ("all i64::MIN", vec![i64::MIN; 100]),
        ("zero heavy", vec![0; 1000]),
    ];
    for (label, values) in datasets {
        let d = SortedInts::new(values).unwrap();
        let mut rng = seeded(5);
        let m = infinite_domain_mean(&mut rng, &d, eps(1.0), 0.2).unwrap();
        assert!(m.estimate.is_finite(), "{label}: mean {:?}", m.estimate);
        let s = infinite_domain_sum(&mut rng, &d, eps(1.0), 0.2).unwrap();
        assert!(s.estimate.is_finite(), "{label}: sum {:?}", s.estimate);
    }
}

#[test]
fn nan_and_infinity_are_rejected_not_propagated() {
    let bad_inputs = [vec![f64::NAN; 100], vec![f64::INFINITY; 100], {
        let mut v = vec![1.0; 99];
        v.push(f64::NEG_INFINITY);
        v
    }];
    let mut rng = seeded(6);
    for data in &bad_inputs {
        assert!(matches!(
            updp::statistical::estimate_mean(&mut rng, data, eps(1.0), 0.2),
            Err(UpdpError::NonFiniteInput { .. })
        ));
        assert!(matches!(
            updp::statistical::estimate_variance(&mut rng, data, eps(1.0), 0.2),
            Err(UpdpError::NonFiniteInput { .. })
        ));
        assert!(matches!(
            updp::statistical::estimate_iqr(&mut rng, data, eps(1.0), 0.2),
            Err(UpdpError::NonFiniteInput { .. })
        ));
    }
}

#[test]
fn dl09_baseline_refuses_rather_than_leaks_on_degenerate_data() {
    // The (ε,δ)-DP baseline's refusal branch must engage on data where
    // the IQR is unstable, rather than emitting something data-revealing.
    let mut rng = seeded(7);
    let degenerate = vec![5.0; 1000];
    let r = updp::baselines::dl09_iqr(&mut rng, &degenerate, eps(1.0), Delta::new(1e-6).unwrap());
    assert!(matches!(r, Err(UpdpError::MechanismRefused { .. })));
}

#[test]
fn estimators_handle_presorted_and_reverse_sorted_input() {
    // Input order must not matter for correctness (pairing uses order,
    // but estimates must stay accurate for exchangeable data).
    let base: Vec<f64> = (0..10_000).map(|i| (i % 997) as f64).collect();
    let mut sorted = base.clone();
    sorted.sort_by(f64::total_cmp);
    let mut reversed = sorted.clone();
    reversed.reverse();
    let truth = base.iter().sum::<f64>() / base.len() as f64;
    for (label, data) in [
        ("shuffled", &base),
        ("sorted", &sorted),
        ("reversed", &reversed),
    ] {
        let mut rng = seeded(8);
        let m = updp::statistical::estimate_mean(&mut rng, data, eps(1.0), 0.1).unwrap();
        assert!(
            (m.estimate - truth).abs() < 60.0,
            "{label}: estimate {} vs {truth}",
            m.estimate
        );
    }
}
