//! Statistical privacy audits: empirically verify the ε-DP inequality
//! `Pr[M(D) ∈ S] ≤ e^ε·Pr[M(D′) ∈ S]` on neighboring datasets for the
//! discrete-output mechanisms, by Monte-Carlo estimation of the output
//! distributions.
//!
//! These are *sanity audits*, not proofs: with `T` trials per dataset the
//! per-bin frequencies carry `O(1/√T)` noise, so assertions allow a
//! generous slack factor and only consider bins with enough mass. A
//! genuinely broken mechanism (e.g. forgetting the threshold noise in
//! SVT) fails these audits decisively — that failure mode was the
//! motivation for including them.

use std::collections::HashMap;
use updp::core::privacy::Epsilon;
use updp::core::rng::{child_seed, seeded};
use updp::core::svt::sparse_vector_slice;
use updp::empirical::{infinite_domain_radius, SortedInts};

const TRIALS: usize = 30_000;
/// Only audit outcomes with at least this empirical probability; rarer
/// bins have too much Monte-Carlo noise to test meaningfully.
const MIN_MASS: f64 = 0.02;
/// Monte-Carlo slack multiplier on e^ε.
const SLACK: f64 = 1.35;

/// Collects the empirical output distribution of a discrete mechanism.
fn histogram<F>(trials: usize, master: u64, mut f: F) -> HashMap<i64, f64>
where
    F: FnMut(&mut rand::rngs::StdRng) -> i64,
{
    let mut counts: HashMap<i64, usize> = HashMap::new();
    for t in 0..trials {
        let mut rng = seeded(child_seed(master, t as u64));
        *counts.entry(f(&mut rng)).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .map(|(k, v)| (k, v as f64 / trials as f64))
        .collect()
}

/// Asserts the ε-DP ratio bound between two output histograms.
fn assert_dp_ratio(p: &HashMap<i64, f64>, q: &HashMap<i64, f64>, epsilon: f64, label: &str) {
    let bound = epsilon.exp() * SLACK;
    for (&k, &pv) in p {
        if pv < MIN_MASS {
            continue;
        }
        let qv = q.get(&k).copied().unwrap_or(0.0);
        assert!(
            pv <= bound * qv.max(1.0 / TRIALS as f64),
            "{label}: outcome {k} has P={pv:.4} vs Q={qv:.4}, ratio exceeds e^ε·slack = {bound:.3}"
        );
    }
}

#[test]
fn svt_index_distribution_satisfies_epsilon_dp() {
    // Neighboring count sequences: one record moved across a boundary
    // changes two prefix counts by 1.
    let e = 0.8;
    let eps = Epsilon::new(e).unwrap();
    let answers_d: Vec<f64> = vec![10.0, 12.0, 15.0, 18.0, 20.0, 20.0];
    let answers_d2: Vec<f64> = vec![10.0, 13.0, 16.0, 18.0, 20.0, 20.0];
    let run = |answers: Vec<f64>, master: u64| {
        histogram(TRIALS, master, move |rng| {
            sparse_vector_slice(rng, 17.0, eps, &answers)
                .map(|i| i as i64)
                .unwrap_or(-1)
        })
    };
    let p = run(answers_d, 1);
    let q = run(answers_d2, 2);
    assert_dp_ratio(&p, &q, e, "SVT D->D'");
    assert_dp_ratio(&q, &p, e, "SVT D'->D");
}

#[test]
fn radius_output_distribution_satisfies_epsilon_dp() {
    let e = 1.0;
    let eps = Epsilon::new(e).unwrap();
    // Neighbors: one value swapped from the bulk to a far outlier.
    let mut base: Vec<i64> = (0..200).map(|i| (i % 17) - 8).collect();
    let d1 = SortedInts::new(base.clone()).unwrap();
    base[0] = 1 << 20;
    let d2 = SortedInts::new(base).unwrap();
    let run = |d: SortedInts, master: u64| {
        histogram(TRIALS, master, move |rng| {
            infinite_domain_radius(rng, &d, eps, 0.1) as i64
        })
    };
    let p = run(d1, 3);
    let q = run(d2, 4);
    assert_dp_ratio(&p, &q, e, "radius D->D'");
    assert_dp_ratio(&q, &p, e, "radius D'->D");
}

#[test]
fn broken_mechanism_fails_the_audit() {
    // Negative control: a "mechanism" that leaks the data (returns the
    // true first-above-threshold index without noise) must violate the
    // ratio bound — proving the audit has teeth.
    let answers_d = [0.0, 0.0, 100.0];
    let answers_d2 = [0.0, 100.0, 100.0];
    let leak = |answers: [f64; 3], master: u64| {
        histogram(TRIALS, master, move |rng| {
            let _ = rng; // deterministic leak
            answers.iter().position(|&a| a > 50.0).unwrap() as i64
        })
    };
    let p = leak(answers_d, 5);
    let q = leak(answers_d2, 6);
    let violated = p.iter().any(|(&k, &pv)| {
        pv >= MIN_MASS && pv > (1.0f64).exp() * SLACK * q.get(&k).copied().unwrap_or(0.0)
    });
    assert!(violated, "the audit failed to flag a leaking mechanism");
}

#[test]
fn laplace_mechanism_ratio_bound_on_coarse_bins() {
    // Continuous output: audit on coarse integer bins of width 1.
    let e = 0.6;
    let eps = Epsilon::new(e).unwrap();
    let run = |value: f64, master: u64| {
        histogram(TRIALS, master, move |rng| {
            updp::core::laplace::laplace_mechanism(rng, value, 1.0, eps)
                .unwrap()
                .floor() as i64
        })
    };
    // Neighboring sums differing by the full sensitivity 1.
    let p = run(10.0, 7);
    let q = run(11.0, 8);
    assert_dp_ratio(&p, &q, e, "laplace D->D'");
    assert_dp_ratio(&q, &p, e, "laplace D'->D");
}
