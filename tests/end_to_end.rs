//! End-to-end integration tests: the full pipeline through the `updp`
//! facade, across distribution families and parameter regimes.

use updp::core::privacy::Epsilon;
use updp::core::rng::{child_seed, seeded};
use updp::dist::{
    Affine, Cauchy, ContinuousDistribution, Exponential, Gaussian, GaussianMixture, LaplaceDist,
    LogNormal, Pareto, StudentT, Uniform,
};
use updp::prelude::*;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Median absolute error over repeated trials through the facade.
fn mean_median_err(dist: &dyn ContinuousDistribution, n: usize, e: f64, master: u64) -> f64 {
    let est = UniversalEstimator::new(eps(e));
    let truth = dist.mean();
    let mut errs: Vec<f64> = (0..20)
        .map(|t| {
            let mut rng = seeded(child_seed(master, t));
            let data = dist.sample_vec(&mut rng, n);
            (est.mean(&mut rng, &data).unwrap().estimate - truth).abs()
        })
        .collect();
    errs.sort_by(f64::total_cmp);
    errs[10]
}

#[test]
fn facade_mean_works_across_nine_families() {
    let dists: Vec<(Box<dyn ContinuousDistribution>, f64)> = vec![
        (Box::new(Gaussian::new(10.0, 2.0).unwrap()), 0.3),
        (Box::new(Uniform::new(-5.0, 5.0).unwrap()), 0.3),
        (Box::new(LaplaceDist::new(3.0, 1.0).unwrap()), 0.3),
        (Box::new(Exponential::new(0.5).unwrap()), 0.3),
        (Box::new(LogNormal::new(0.0, 0.5).unwrap()), 0.3),
        (Box::new(Pareto::new(1.0, 3.0).unwrap()), 0.3),
        (Box::new(StudentT::new(4.0, -7.0, 1.0).unwrap()), 0.4),
        (Box::new(GaussianMixture::bimodal(6.0, 1.0).unwrap()), 0.4),
        (
            Box::new(Affine::new(Gaussian::standard(), 1e6, 10.0).unwrap()),
            3.0,
        ),
    ];
    for (i, (d, tol)) in dists.iter().enumerate() {
        let err = mean_median_err(d.as_ref(), 30_000, 0.5, 1000 + i as u64);
        assert!(
            err < *tol,
            "{}: median error {err} exceeds tolerance {tol}",
            d.name()
        );
    }
}

#[test]
fn all_estimates_under_one_budget_are_consistent() {
    let g = Gaussian::new(-40.0, 5.0).unwrap();
    let mut rng = seeded(2);
    let data = g.sample_vec(&mut rng, 40_000);
    let est = UniversalEstimator::new(eps(1.5)).with_beta(0.1);
    let all = est.all(&mut rng, &data).unwrap();
    assert!(
        (all.mean.estimate + 40.0).abs() < 1.0,
        "mean {}",
        all.mean.estimate
    );
    assert!(
        (all.variance.estimate - 25.0).abs() < 5.0,
        "variance {}",
        all.variance.estimate
    );
    assert!(
        (all.iqr.estimate - g.iqr()).abs() < 1.0,
        "iqr {}",
        all.iqr.estimate
    );
    // Cross-consistency: for Gaussians IQR ≈ 1.349σ.
    let sigma_from_var = all.variance.estimate.sqrt();
    let sigma_from_iqr = all.iqr.estimate / 1.3489795;
    assert!(
        (sigma_from_var - sigma_from_iqr).abs() < 1.0,
        "σ estimates disagree: {sigma_from_var} vs {sigma_from_iqr}"
    );
}

#[test]
fn pipeline_is_deterministic_given_seed() {
    let g = Gaussian::standard();
    let est = UniversalEstimator::new(eps(0.7));
    let run = || {
        let mut rng = seeded(77);
        let data = g.sample_vec(&mut rng, 5_000);
        let m = est.mean(&mut rng, &data).unwrap();
        let v = est.variance(&mut rng, &data).unwrap();
        let i = est.iqr(&mut rng, &data).unwrap();
        (m.estimate, v.estimate, i.estimate)
    };
    assert_eq!(run(), run());
}

#[test]
fn cauchy_mean_runs_without_crashing_iqr_stays_accurate() {
    // No mean exists; the mean estimator has no guarantee but must not
    // panic, and the IQR estimator keeps its guarantee.
    let c = Cauchy::new(5.0, 2.0).unwrap();
    let mut rng = seeded(3);
    let data = c.sample_vec(&mut rng, 20_000);
    let est = UniversalEstimator::new(eps(1.0));
    let m = est.mean(&mut rng, &data).unwrap();
    assert!(m.estimate.is_finite());
    let i = est.iqr(&mut rng, &data).unwrap();
    assert!(
        (i.estimate - c.iqr()).abs() / c.iqr() < 0.25,
        "iqr {}",
        i.estimate
    );
}

#[test]
fn error_scales_inversely_with_epsilon_in_privacy_regime() {
    // In the privacy-dominated regime (small εn), halving ε should
    // roughly double the error.
    let g = Gaussian::new(0.0, 1.0).unwrap();
    let tight = mean_median_err(&g, 3_000, 0.4, 50);
    let loose = mean_median_err(&g, 3_000, 0.05, 60);
    assert!(
        loose > 1.5 * tight,
        "ε dependence too weak: ε=0.4 -> {tight}, ε=0.05 -> {loose}"
    );
}

#[test]
fn subsampled_range_covers_bulk_of_data() {
    let g = Gaussian::new(123.0, 4.0).unwrap();
    let mut rng = seeded(4);
    let data = g.sample_vec(&mut rng, 30_000);
    let m = estimate_mean(&mut rng, &data, eps(0.5), 0.1).unwrap();
    let frac_clipped = m.clipped as f64 / data.len() as f64;
    assert!(
        frac_clipped < 0.01,
        "clipped fraction {frac_clipped} too large"
    );
    assert!(m.range.lo < 123.0 && m.range.hi > 123.0);
}

#[test]
fn empirical_and_statistical_agree_on_benign_data() {
    // On concentrated data the §3 empirical mean and the §4 statistical
    // mean should both land near the sample mean.
    let g = Gaussian::new(55.0, 1.0).unwrap();
    let mut rng = seeded(5);
    let data = g.sample_vec(&mut rng, 20_000);
    let sample_mean: f64 = data.iter().sum::<f64>() / data.len() as f64;

    let stat = estimate_mean(&mut rng, &data, eps(1.0), 0.1)
        .unwrap()
        .estimate;
    let emp = updp::empirical::real_mean(&mut rng, &data, 0.01, eps(1.0), 0.1).unwrap();
    assert!((stat - sample_mean).abs() < 0.5, "statistical {stat}");
    assert!((emp - sample_mean).abs() < 0.5, "empirical {emp}");
}

#[test]
fn variance_and_iqr_consistent_on_laplace() {
    // Laplace: IQR = 2b·ln2, σ² = 2b². Check both estimates imply
    // compatible b.
    let l = LaplaceDist::new(0.0, 3.0).unwrap();
    let mut rng = seeded(6);
    let data = l.sample_vec(&mut rng, 60_000);
    let est = UniversalEstimator::new(eps(1.0));
    let v = est.variance(&mut rng, &data).unwrap();
    let i = est.iqr(&mut rng, &data).unwrap();
    let b_from_var = (v.estimate / 2.0).sqrt();
    let b_from_iqr = i.estimate / (2.0 * std::f64::consts::LN_2);
    assert!(
        (b_from_var - 3.0).abs() < 0.3,
        "b from variance {b_from_var}"
    );
    assert!((b_from_iqr - 3.0).abs() < 0.3, "b from iqr {b_from_iqr}");
}
