//! # Universal Private Estimators
//!
//! A production-quality Rust implementation of **"Universal Private
//! Estimators"** (Wei Dong and Ke Yi, PODS 2023; arXiv:2111.02598):
//! pure-DP (ε-DP) estimators for the statistical **mean**, **variance**,
//! and **interquartile range** of an *arbitrary, unknown* continuous
//! distribution — with **no** a-priori range for the mean (assumption
//! A1), **no** variance bounds (A2), and **no** distribution-family
//! assumption (A3).
//!
//! ## Quickstart
//!
//! ```
//! use updp::prelude::*;
//!
//! // Income-like data: unknown location, unknown scale, skewed.
//! let mut rng = updp::core::rng::seeded(42);
//! let data: Vec<f64> = (0..20_000)
//!     .map(|i| 60_000.0 + 15_000.0 * ((i % 97) as f64 / 97.0 - 0.5))
//!     .collect();
//!
//! let est = UniversalEstimator::new(Epsilon::new(1.0).unwrap());
//! let mean = est.mean(&mut rng, &data).unwrap();
//! assert!((mean.estimate - 60_000.0).abs() < 1_000.0);
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `updp-core` | DP primitives: Laplace, SVT, exponential & inverse-sensitivity mechanisms, budgets |
//! | [`dist`] | `updp-dist` | distributions with exact ground-truth functionals (`ϕ(β)`, `θ(κ)`, `μ_k`, …) |
//! | [`empirical`] | `updp-empirical` | §3 instance-optimal empirical estimators over unbounded domains |
//! | [`statistical`] | `updp-statistical` | §4–6 universal estimators (`EstimateMean`/`Variance`/`IQR`) + the workspace [`Estimator`](statistical::Estimator) trait |
//! | [`baselines`] | `updp-baselines` | Table 1 comparators: KV18, CoinPress, KSU20, BS19, DL09 — all behind the `Estimator` catalog |
//!
//! The [`prelude`] pulls in the handful of names most applications need.
//!
//! ## Privacy model
//!
//! All estimators satisfy pure ε-DP (Eq. 1 with δ = 0) for *every* input
//! dataset; the utility guarantees are the instance-specific bounds of
//! Theorems 4.5, 5.2, and 6.2 and hold with probability 1 − β over both
//! the sample and the mechanism's coins.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use updp_baselines as baselines;
pub use updp_core as core;
pub use updp_dist as dist;
pub use updp_empirical as empirical;
pub use updp_statistical as statistical;

/// The most commonly used names in one import.
pub mod prelude {
    pub use updp_core::privacy::{Delta, Epsilon};
    pub use updp_core::{Result, UpdpError};
    pub use updp_dist::ContinuousDistribution;
    pub use updp_statistical::{
        estimate_iqr, estimate_mean, estimate_mean_multivariate, estimate_quantile,
        estimate_quantile_range, estimate_variance, DataView, EstimateParams, Estimator,
        IqrEstimate, MeanEstimate, MultivariateMeanEstimate, PreparedDataset, QuantileEstimate,
        Release, UniversalEstimator, VarianceEstimate,
    };
}
